// STG model: signals, labels, instances, initial values, validation.
#include <gtest/gtest.h>

#include "stg/stg.hpp"
#include "util/error.hpp"

namespace stgcheck::stg {
namespace {

TEST(StgModel, SignalDeclaration) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  SignalId x = stg.add_signal("x", SignalKind::kOutput);
  SignalId u = stg.add_signal("u", SignalKind::kInternal);
  EXPECT_EQ(stg.signal_count(), 3u);
  EXPECT_EQ(stg.signal_name(a), "a");
  EXPECT_EQ(stg.signal_kind(x), SignalKind::kOutput);
  EXPECT_TRUE(stg.is_input(a));
  EXPECT_FALSE(stg.is_input(x));
  EXPECT_TRUE(stg.is_noninput(u));
  EXPECT_EQ(stg.find_signal("x"), x);
  EXPECT_EQ(stg.find_signal("zz"), kNoSignal);
}

TEST(StgModel, SignalsOfKind) {
  Stg stg;
  stg.add_signal("a", SignalKind::kInput);
  stg.add_signal("x", SignalKind::kOutput);
  stg.add_signal("b", SignalKind::kInput);
  stg.add_signal("u", SignalKind::kInternal);
  EXPECT_EQ(stg.signals_of_kind(SignalKind::kInput).size(), 2u);
  EXPECT_EQ(stg.signals_of_kind(SignalKind::kOutput).size(), 1u);
  EXPECT_EQ(stg.noninput_signals().size(), 2u);
}

TEST(StgModel, BadSignalNamesRejected) {
  Stg stg;
  EXPECT_THROW(stg.add_signal("", SignalKind::kInput), ModelError);
  EXPECT_THROW(stg.add_signal("a+b", SignalKind::kInput), ModelError);
  EXPECT_THROW(stg.add_signal("a/2", SignalKind::kInput), ModelError);
  EXPECT_THROW(stg.add_signal("<p>", SignalKind::kInput), ModelError);
  stg.add_signal("ok_name.3", SignalKind::kInput);
  EXPECT_THROW(stg.add_signal("ok_name.3", SignalKind::kOutput), ModelError);
}

TEST(StgModel, TransitionInstancesAutoIncrement) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  pn::TransitionId t1 = stg.add_transition(a, Dir::kPlus);
  pn::TransitionId t2 = stg.add_transition(a, Dir::kPlus);
  pn::TransitionId t3 = stg.add_transition(a, Dir::kMinus);
  EXPECT_EQ(stg.format_label(t1), "a+");
  EXPECT_EQ(stg.format_label(t2), "a+/2");
  EXPECT_EQ(stg.format_label(t3), "a-");
  EXPECT_EQ(stg.label(t2).instance, 2u);
  EXPECT_EQ(stg.label(t3).dir, Dir::kMinus);
  EXPECT_EQ(stg.find_transition(a, Dir::kPlus, 2), t2);
  EXPECT_EQ(stg.find_transition(a, Dir::kMinus, 2), pn::kNoId);
}

TEST(StgModel, ExplicitInstanceIndices) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  stg.add_transition(a, Dir::kPlus, 3);
  // Auto-numbering continues after the highest explicit index.
  pn::TransitionId t = stg.add_transition(a, Dir::kPlus);
  EXPECT_EQ(stg.label(t).instance, 4u);
  EXPECT_THROW(stg.add_transition(a, Dir::kPlus, 0), ModelError);
  EXPECT_THROW(stg.add_transition(SignalId{9}, Dir::kPlus), ModelError);
}

TEST(StgModel, DummyTransitions) {
  Stg stg;
  pn::TransitionId d = stg.add_dummy("eps");
  EXPECT_TRUE(stg.label(d).is_dummy());
  EXPECT_EQ(stg.format_label(d), "eps");
  EXPECT_THROW(stg.add_dummy(""), ModelError);
}

TEST(StgModel, TransitionsOfSignal) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  SignalId b = stg.add_signal("b", SignalKind::kOutput);
  stg.add_transition(a, Dir::kPlus);
  stg.add_transition(b, Dir::kPlus);
  stg.add_transition(a, Dir::kMinus);
  EXPECT_EQ(stg.transitions_of_signal(a).size(), 2u);
  EXPECT_EQ(stg.transitions_of(a, Dir::kPlus).size(), 1u);
  EXPECT_EQ(stg.transitions_of(b, Dir::kMinus).size(), 0u);
}

TEST(StgModel, ConnectCreatesImplicitPlace) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  pn::TransitionId t1 = stg.add_transition(a, Dir::kPlus);
  pn::TransitionId t2 = stg.add_transition(a, Dir::kMinus);
  pn::PlaceId p = stg.connect(t1, t2, 1);
  EXPECT_EQ(stg.net().place_name(p), "<a+,a->");
  EXPECT_EQ(stg.net().initial_marking().tokens(p), 1);
  EXPECT_EQ(stg.net().preset(t2)[0], p);
}

TEST(StgModel, InitialValues) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  SignalId b = stg.add_signal("b", SignalKind::kOutput);
  EXPECT_FALSE(stg.initial_value(a).has_value());
  EXPECT_FALSE(stg.all_initial_values_known());
  stg.set_initial_value(a, true);
  EXPECT_EQ(stg.initial_value(a), std::optional<bool>(true));
  EXPECT_FALSE(stg.all_initial_values_known());
  stg.set_initial_value(b, false);
  EXPECT_TRUE(stg.all_initial_values_known());
  EXPECT_THROW(stg.set_initial_value(SignalId{7}, true), ModelError);
}

TEST(StgModel, ValidateRequiresTransitionsPerSignal) {
  Stg stg;
  SignalId a = stg.add_signal("a", SignalKind::kInput);
  stg.add_signal("ghost", SignalKind::kOutput);
  pn::TransitionId t = stg.add_transition(a, Dir::kPlus);
  pn::PlaceId p = stg.add_place("p", 1);
  stg.arc_pt(p, t);
  EXPECT_THROW(stg.validate(), ModelError);
}

TEST(LabelText, ParseValid) {
  auto l1 = parse_label_text("a+");
  ASSERT_TRUE(l1.has_value());
  EXPECT_EQ(l1->signal, "a");
  EXPECT_EQ(l1->dir, Dir::kPlus);
  EXPECT_EQ(l1->instance, 1u);

  auto l2 = parse_label_text("req-/12");
  ASSERT_TRUE(l2.has_value());
  EXPECT_EQ(l2->signal, "req");
  EXPECT_EQ(l2->dir, Dir::kMinus);
  EXPECT_EQ(l2->instance, 12u);
}

TEST(LabelText, ParseInvalid) {
  EXPECT_FALSE(parse_label_text("p1").has_value());
  EXPECT_FALSE(parse_label_text("+a").has_value());
  EXPECT_FALSE(parse_label_text("a+/").has_value());
  EXPECT_FALSE(parse_label_text("a+/x").has_value());
  EXPECT_FALSE(parse_label_text("a+/0").has_value());
  EXPECT_FALSE(parse_label_text("a+2").has_value());
}

}  // namespace
}  // namespace stgcheck::stg
