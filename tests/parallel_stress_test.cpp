// Parallel-traversal stress: every example net is traversed at 1, 2, 4
// and 8 threads through the same encoding, and every run must reproduce
// the one-thread reached set bit for bit (same manager, so canonicity
// turns Bdd handle equality into function equality) with the same exact
// state count. core_cross_validation_test pins the one-thread results to
// the explicit state graph, so agreement here transitively pins the
// parallel kernel to the paper's numbers. Random STGs then churn the
// concurrent table/cache under check_invariants().
#include <gtest/gtest.h>

#include <cstddef>

#include "core/image_engine.hpp"
#include "core/traversal.hpp"
#include "example_nets.hpp"
#include "random_stg.hpp"
#include "util/rng.hpp"

namespace stgcheck::core {
namespace {

constexpr std::size_t kThreadArms[] = {2, 4, 8};

/// Traverses `sym` once per thread count and compares against the
/// one-thread reference through the shared manager.
void expect_thread_invariant_traversal(SymbolicStg& sym,
                                       TraversalOptions options) {
  options.abort_on_violation = false;
  options.engine_options.threads = 1;
  const TraversalResult ref = traverse(sym, options);
  for (const std::size_t threads : kThreadArms) {
    // Flush the computed caches so the parallel run recomputes every
    // image instead of replaying the reference run's cache lines.
    sym.manager().collect_garbage();
    options.engine_options.threads = threads;
    const TraversalResult run = traverse(sym, options);
    EXPECT_EQ(run.reached, ref.reached) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(run.stats.states, ref.stats.states)
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(run.stats.markings, ref.stats.markings)
        << "threads=" << threads;
    EXPECT_EQ(run.consistent, ref.consistent) << "threads=" << threads;
    EXPECT_EQ(run.safe, ref.safe) << "threads=" << threads;
    sym.manager().check_invariants();
  }
  sym.manager().set_thread_count(1);
}

class ParallelStress : public ::testing::TestWithParam<int> {};

TEST_P(ParallelStress, CofactorEngineIsThreadCountInvariant) {
  stg::Stg net = testutil::example_net(GetParam());
  SymbolicStg sym(net);
  TraversalOptions options;
  options.engine = EngineKind::kCofactor;
  expect_thread_invariant_traversal(sym, options);
}

TEST_P(ParallelStress, SaturationEngineIsThreadCountInvariant) {
  stg::Stg net = testutil::example_net(GetParam());
  SymbolicStg sym(net, Ordering::kInterleaved, 1 << 14,
                  /*with_primed_vars=*/true);
  TraversalOptions options;
  options.engine = EngineKind::kSaturation;
  expect_thread_invariant_traversal(sym, options);
}

TEST_P(ParallelStress, ScheduledMonolithicEngineIsThreadCountInvariant) {
  stg::Stg net = testutil::example_net(GetParam());
  SymbolicStg sym(net, Ordering::kInterleaved, 1 << 14,
                  /*with_primed_vars=*/true);
  TraversalOptions options;
  options.engine = EngineKind::kMonolithicRelation;
  options.engine_options.schedule = ScheduleKind::kSupportOverlap;
  expect_thread_invariant_traversal(sym, options);
}

INSTANTIATE_TEST_SUITE_P(AllNets, ParallelStress,
                         ::testing::Range(0, testutil::kExampleNetCount));

TEST(ParallelStressRandom, RandomStgsStayCanonicalUnderConcurrency) {
  Rng rng(0x5EED);
  for (int round = 0; round < 12; ++round) {
    stg::Stg net = testutil::random_stg(rng);
    const bool saturation = round % 2 != 0;
    SymbolicStg sym(net, Ordering::kInterleaved, 1 << 14,
                    /*with_primed_vars=*/saturation);
    TraversalOptions options;
    options.engine =
        saturation ? EngineKind::kSaturation : EngineKind::kCofactor;
    expect_thread_invariant_traversal(sym, options);
  }
}

}  // namespace
}  // namespace stgcheck::core
