// The protocol JSON value: parse/dump round-trips, escaping, typed-access
// errors and the documented simplifications (first-duplicate wins, integer
// formatting of integral doubles).
#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace stgcheck::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_EQ(Value::parse("true").as_bool(), true);
  EXPECT_EQ(Value::parse("false").as_bool(), false);
  EXPECT_EQ(Value::parse("42").as_number(), 42.0);
  EXPECT_EQ(Value::parse("-2.5e1").as_number(), -25.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNestedDocument) {
  const Value doc = Value::parse(
      R"({"op":"batch","nets":[{"id":"a","n":1},{"id":"b","n":2}],"ok":true})");
  EXPECT_EQ(doc.at("op").as_string(), "batch");
  const Array& nets = doc.at("nets").as_array();
  ASSERT_EQ(nets.size(), 2u);
  EXPECT_EQ(nets[1].at("id").as_string(), "b");
  EXPECT_EQ(nets[1].at("n").as_number(), 2.0);
  EXPECT_TRUE(doc.at("ok").as_bool());
}

TEST(Json, DumpParsesBack) {
  Value obj = Value::object();
  obj.set("name", Value(std::string("muller")));
  obj.set("count", Value(32));
  obj.set("ratio", Value(0.5));
  obj.set("flag", Value(true));
  Value list = Value::array();
  list.push_back(Value(1));
  list.push_back(Value(std::string("two")));
  list.push_back(Value());
  obj.set("list", std::move(list));

  const Value back = Value::parse(obj.dump());
  EXPECT_EQ(back.at("name").as_string(), "muller");
  EXPECT_EQ(back.at("count").as_number(), 32.0);
  EXPECT_EQ(back.at("ratio").as_number(), 0.5);
  EXPECT_TRUE(back.at("flag").as_bool());
  ASSERT_EQ(back.at("list").as_array().size(), 3u);
  EXPECT_TRUE(back.at("list").as_array()[2].is_null());
}

TEST(Json, IntegralDoublesDumpWithoutFraction) {
  // Counts (states, passes, node gauges) must read as integers on the wire.
  EXPECT_EQ(Value(32).dump(), "32");
  EXPECT_EQ(Value(32.0).dump(), "32");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_NE(Value(0.25).dump().find('.'), std::string::npos);
}

TEST(Json, StringEscapingRoundTrips) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const Value back = Value::parse(Value(nasty).dump());
  EXPECT_EQ(back.as_string(), nasty);
}

TEST(Json, ParseUnicodeEscapes) {
  // é = U+00E9 (two UTF-8 bytes).
  EXPECT_EQ(Value::parse("\"caf\\u00e9\"").as_string(), "caf\xc3\xa9");
}

TEST(Json, DuplicateKeysFirstWins) {
  const Value doc = Value::parse(R"({"k":1,"k":2})");
  ASSERT_NE(doc.find("k"), nullptr);
  EXPECT_EQ(doc.find("k")->as_number(), 1.0);
}

TEST(Json, FindOnNonObjectIsNull) {
  EXPECT_EQ(Value(3).find("x"), nullptr);
  EXPECT_EQ(Value::parse("[1,2]").find("x"), nullptr);
}

TEST(Json, TypeMismatchThrowsModelError) {
  const Value v = Value::parse("\"text\"");
  EXPECT_THROW(v.as_number(), ModelError);
  EXPECT_THROW(v.as_array(), ModelError);
  EXPECT_THROW(v.at("missing"), ModelError);
  EXPECT_THROW(Value::parse("{}").at("missing"), ModelError);
}

TEST(Json, MalformedInputThrowsParseError) {
  EXPECT_THROW(Value::parse(""), ParseError);
  EXPECT_THROW(Value::parse("{"), ParseError);
  EXPECT_THROW(Value::parse("[1,]"), ParseError);
  EXPECT_THROW(Value::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Value::parse("tru"), ParseError);
  EXPECT_THROW(Value::parse("1 2"), ParseError);  // trailing garbage
}

TEST(Json, TrailingWhitespaceAllowed) {
  EXPECT_EQ(Value::parse("7 \n\t").as_number(), 7.0);
}

}  // namespace
}  // namespace stgcheck::json
