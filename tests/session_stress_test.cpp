// Concurrent-session stress: many CheckSessions racing on separate threads
// produce bit-identical results to one-at-a-time serial runs. This is the
// isolation guarantee the daemon rests on -- no mutable state is shared
// between sessions -- exercised both with raw threads and through the
// server's SessionScheduler. Runs under TSan in CI (unit label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "example_nets.hpp"
#include "server/scheduler.hpp"

namespace stgcheck::core {
namespace {

/// Everything we compare bit-for-bit between a serial and a racing run.
struct Fingerprint {
  std::string level;
  bool ok = false;
  std::size_t states = 0;
  std::size_t markings = 0;
  std::size_t passes = 0;
  std::size_t image_computations = 0;
  std::size_t final_reached_nodes = 0;
  std::size_t pass_records = 0;
  std::size_t record_count = 0;

  bool operator==(const Fingerprint& o) const {
    return level == o.level && ok == o.ok && states == o.states &&
           markings == o.markings && passes == o.passes &&
           image_computations == o.image_computations &&
           final_reached_nodes == o.final_reached_nodes &&
           pass_records == o.pass_records && record_count == o.record_count;
  }
};

Fingerprint run_one(int net_index) {
  CheckSession session(testutil::example_net(net_index));
  const ImplementabilityReport& report = session.run();
  Fingerprint fp;
  fp.level = to_string(report.level);
  fp.ok = report.level != ImplementabilityLevel::kNotImplementable;
  fp.states = report.traversal.stats.states;
  fp.markings = report.traversal.stats.markings;
  fp.passes = report.traversal.stats.passes;
  fp.image_computations = report.traversal.stats.image_computations;
  fp.final_reached_nodes = report.traversal.stats.final_reached_nodes;
  for (const EventRecord& r : session.events().records()) {
    if (r.kind == EventKind::kPass) ++fp.pass_records;
  }
  fp.record_count = session.events().records().size();
  return fp;
}

std::vector<Fingerprint> serial_baseline() {
  std::vector<Fingerprint> out(testutil::kExampleNetCount);
  for (int i = 0; i < testutil::kExampleNetCount; ++i) out[i] = run_one(i);
  return out;
}

void expect_identical(const std::vector<Fingerprint>& racing,
                      const std::vector<Fingerprint>& serial) {
  ASSERT_EQ(racing.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(racing[i] == serial[i])
        << "net " << i << ": " << racing[i].level << "/" << racing[i].states
        << " states vs serial " << serial[i].level << "/" << serial[i].states;
  }
}

TEST(SessionStress, RacingThreadsMatchSerialBitForBit) {
  const std::vector<Fingerprint> serial = serial_baseline();

  constexpr std::size_t kThreads = 4;
  std::vector<Fingerprint> racing(serial.size());
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= testutil::kExampleNetCount) return;
        racing[static_cast<std::size_t>(i)] = run_one(i);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  expect_identical(racing, serial);
}

TEST(SessionStress, SchedulerWavesMatchSerialBitForBit) {
  const std::vector<Fingerprint> serial = serial_baseline();

  // The daemon's path: sessions as fire-and-forget jobs on the wave
  // scheduler, submitted from outside while waves run.
  server::SessionScheduler scheduler(4);
  std::vector<Fingerprint> racing(serial.size());
  for (int i = 0; i < testutil::kExampleNetCount; ++i) {
    scheduler.submit(
        [&racing, i] { racing[static_cast<std::size_t>(i)] = run_one(i); });
  }
  scheduler.drain();

  expect_identical(racing, serial);
}

TEST(SessionStress, SingleThreadSchedulerRunsInline) {
  server::SessionScheduler scheduler(1);
  EXPECT_EQ(scheduler.thread_count(), 1u);
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    scheduler.submit([&done] { done.fetch_add(1); });
  }
  scheduler.drain();
  EXPECT_EQ(done.load(), 3);
  scheduler.stop();
  scheduler.stop();  // idempotent
}

TEST(SessionStress, RepeatedSessionsOnOneNetAreDeterministic) {
  // Same net, many concurrent sessions: every run must agree with itself.
  const Fingerprint one = run_one(16);  // vme_read: CSC conflicts
  constexpr std::size_t kRuns = 6;
  std::vector<Fingerprint> runs(kRuns);
  std::vector<std::thread> workers;
  workers.reserve(kRuns);
  for (std::size_t r = 0; r < kRuns; ++r) {
    workers.emplace_back([&runs, r] { runs[r] = run_one(16); });
  }
  for (std::thread& w : workers) w.join();
  for (const Fingerprint& fp : runs) EXPECT_TRUE(fp == one);
}

}  // namespace
}  // namespace stgcheck::core
