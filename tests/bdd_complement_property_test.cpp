// Property tests for the complement-edge kernel invariants:
//
//   * double negation is pointer equality (negation is an edge flag, so
//     !!f must return the very same edge, and f / !f share one graph)
//   * the regular-then canonical form and the unique-table bookkeeping
//     survive sifting and explicit reordering (Manager::check_invariants)
//   * sat-count, ISOP covers and node counts agree with a non-complemented
//     oracle: a plain ROBDD (no attributed edges) built bottom-up from the
//     truth table through the public eval() API only, on random
//     expressions and on reached state sets of random STGs
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/encoding.hpp"
#include "core/image_engine.hpp"
#include "core/traversal.hpp"
#include "random_stg.hpp"
#include "util/rng.hpp"

namespace stgcheck::bdd {
namespace {

// ---------------------------------------------------------------------------
// Non-complemented oracle: a classic reduced OBDD with two terminals and
// no attributed edges, built from a truth table over an explicit variable
// order. Independent of the Manager's internals by construction.
// ---------------------------------------------------------------------------

class PlainBdd {
 public:
  static constexpr std::uint32_t kZero = 0;
  static constexpr std::uint32_t kOne = 1;

  std::uint32_t mk(std::uint32_t var, std::uint32_t low, std::uint32_t high) {
    if (low == high) return low;
    const auto key = std::make_tuple(var, low, high);
    const auto it = unique_.find(key);
    if (it != unique_.end()) return it->second;
    const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size() + 2);
    nodes_.push_back({var, low, high});
    unique_.emplace(key, id);
    return id;
  }

  /// Builds the reduced OBDD of the truth table (row index bit i = value
  /// of the i-th variable in the chosen order, i = 0 topmost).
  std::uint32_t from_table(const std::vector<bool>& table, std::size_t n_vars,
                           std::size_t var = 0, std::size_t base = 0) {
    if (var == n_vars) return table[base] ? kOne : kZero;
    const std::size_t stride = std::size_t{1} << (n_vars - 1 - var);
    const std::uint32_t low =
        from_table(table, n_vars, var + 1, base);
    const std::uint32_t high =
        from_table(table, n_vars, var + 1, base + stride);
    return mk(static_cast<std::uint32_t>(var), low, high);
  }

  /// Non-terminal node count of the whole store. Every node created while
  /// reducing a single table is reachable from its root, so after one
  /// from_table call this is exactly the plain-BDD size of that function.
  std::size_t node_count() const { return nodes_.size(); }

  std::size_t sat_count(std::uint32_t root, std::size_t n_vars) const {
    std::map<std::uint32_t, double> memo;
    return static_cast<std::size_t>(prob(root, memo) *
                                    static_cast<double>(std::size_t{1} << n_vars));
  }

 private:
  double prob(std::uint32_t id, std::map<std::uint32_t, double>& memo) const {
    if (id == kZero) return 0.0;
    if (id == kOne) return 1.0;
    const auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    const auto& n = nodes_[id - 2];
    const double p = 0.5 * prob(n[1], memo) + 0.5 * prob(n[2], memo);
    memo.emplace(id, p);
    return p;
  }

  std::vector<std::array<std::uint32_t, 3>> nodes_;  // var, low, high
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      unique_;
};

/// Truth table of f over `vars` (listed top-to-bottom in the manager's
/// current order); variables outside `vars` are fixed to 0.
std::vector<bool> truth_table(Manager& m, const Bdd& f,
                              const std::vector<Var>& vars) {
  const std::size_t k = vars.size();
  std::vector<bool> table(std::size_t{1} << k);
  std::vector<bool> assignment(m.var_count(), false);
  for (std::size_t row = 0; row < table.size(); ++row) {
    for (std::size_t i = 0; i < k; ++i) {
      assignment[vars[i]] = ((row >> (k - 1 - i)) & 1u) != 0;
    }
    table[row] = m.eval(f, assignment);
  }
  return table;
}

/// Evaluates an ISOP cover as a sum of products.
bool eval_cover(const std::vector<CubeLiterals>& cover,
                const std::vector<bool>& assignment) {
  for (const CubeLiterals& cube : cover) {
    bool all = true;
    for (const Literal& l : cube) {
      if (assignment[l.var] != l.positive) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

/// Checks f against the plain (non-complemented) oracle: sat count, plain
/// node count dominates the complement-edge count, and the ISOP cover of
/// f denotes exactly f.
void expect_matches_oracle(Manager& m, const Bdd& f) {
  const std::vector<Var> sup = m.support(f);
  ASSERT_LE(sup.size(), 16u) << "oracle truth table would be too large";
  const std::vector<bool> table = truth_table(m, f, sup);

  PlainBdd plain;
  const std::uint32_t root = plain.from_table(table, sup.size());

  // SAT count over the support agrees with the truth table oracle.
  EXPECT_DOUBLE_EQ(m.sat_count_over(f, sup),
                   static_cast<double>(plain.sat_count(root, sup.size())));

  // A complement-edge BDD is never larger than the plain BDD of the same
  // function (it merges every node with its negation), and never smaller
  // than half of it.
  EXPECT_LE(m.count_nodes(f), plain.node_count());
  EXPECT_GE(2 * m.count_nodes(f) + 1, plain.node_count());

  // The ISOP cover of [f, f] is exactly f, row by row.
  Bdd cover_fn;
  const std::vector<CubeLiterals> cover = m.isop(f, f, &cover_fn);
  EXPECT_EQ(cover_fn, f);
  const std::size_t k = sup.size();
  std::vector<bool> assignment(m.var_count(), false);
  for (std::size_t row = 0; row < table.size(); ++row) {
    for (std::size_t i = 0; i < k; ++i) {
      assignment[sup[i]] = ((row >> (k - 1 - i)) & 1u) != 0;
    }
    EXPECT_EQ(eval_cover(cover, assignment), table[row]) << "row " << row;
  }
}

// ---------------------------------------------------------------------------
// Random expressions
// ---------------------------------------------------------------------------

constexpr std::size_t kVars = 9;

Bdd random_expr(Manager& m, Rng& rng, int depth) {
  if (depth == 0 || rng.below(5) == 0) {
    const Var v = static_cast<Var>(rng.below(kVars));
    return rng.flip() ? m.var(v) : !m.var(v);
  }
  Bdd lhs = random_expr(m, rng, depth - 1);
  Bdd rhs = random_expr(m, rng, depth - 1);
  switch (rng.below(3)) {
    case 0: return lhs & rhs;
    case 1: return lhs | rhs;
    default: return lhs ^ rhs;
  }
}

class ComplementEdgeRandom : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Manager m;
  Rng rng{GetParam()};

  void SetUp() override {
    for (std::size_t v = 0; v < kVars; ++v) {
      m.new_var("v" + std::to_string(v));
    }
  }
};

TEST_P(ComplementEdgeRandom, DoubleNegationIsPointerEqual) {
  for (int i = 0; i < 16; ++i) {
    Bdd f = random_expr(m, rng, 5);
    Bdd nf = !f;
    EXPECT_EQ((!nf).ref(), f.ref());          // same edge, not just same function
    EXPECT_EQ(nf.ref(), bdd_not(f.ref()));    // negation is the edge flag
    if (!f.is_terminal()) EXPECT_NE(nf.ref(), f.ref());
    EXPECT_EQ(m.count_nodes(f), m.count_nodes(nf));  // one shared graph
  }
}

TEST_P(ComplementEdgeRandom, NegationAllocatesNothing) {
  Bdd f = random_expr(m, rng, 6);
  const std::size_t before = m.stats().node_count;
  Bdd nf = !f;
  Bdd back = !nf;
  EXPECT_EQ(m.stats().node_count, before);
  EXPECT_EQ(back, f);
}

TEST_P(ComplementEdgeRandom, InvariantsHoldAfterOpsSiftAndReorder) {
  std::vector<Bdd> keep;
  for (int i = 0; i < 8; ++i) keep.push_back(random_expr(m, rng, 5));
  m.check_invariants();

  m.sift();
  m.check_invariants();

  // Explicit reorder to a random shuffle (no groups registered here).
  std::vector<Var> order = m.current_order();
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  m.reorder(order);
  m.check_invariants();

  // Functions survive both reorders semantically.
  for (Bdd& f : keep) {
    Bdd nf = !f;
    EXPECT_EQ((!nf).ref(), f.ref());
  }
  m.collect_garbage();
  m.check_invariants();
}

TEST_P(ComplementEdgeRandom, AgreesWithPlainOracle) {
  for (int i = 0; i < 8; ++i) {
    Bdd f = random_expr(m, rng, 5);
    expect_matches_oracle(m, f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementEdgeRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Regression: sat counting must push complement flags down to the
// terminals. Evaluating a complemented edge as 1 - p(node) cancels to
// zero once the function is sparser than double precision (n > 53
// variables: 1 - 2^-n rounds to exactly 1.0), which is precisely the
// regime of the paper's 80-odd-variable encodings.
TEST(ComplementEdgeDeep, SatCountSurvivesDeepComplementedPaths) {
  Manager m;
  constexpr std::size_t kDeep = 81;
  CubeLiterals lits;
  for (std::size_t v = 0; v < kDeep; ++v) {
    m.new_var();
    lits.push_back(Literal{static_cast<Var>(v), v % 2 == 0});
  }
  Bdd cube = m.cube(lits);  // alternating polarities: complement-edge heavy
  EXPECT_DOUBLE_EQ(m.sat_count(cube), 1.0);
}

// The complement count is only checkable at depths where 2^n - 1 is an
// exact double (n <= 52); past that the subtraction rounds away and any
// implementation would pass.
TEST(ComplementEdgeDeep, ComplementSatCountExactBelowDoublePrecision) {
  Manager m;
  constexpr std::size_t kDeep = 50;
  CubeLiterals lits;
  for (std::size_t v = 0; v < kDeep; ++v) {
    m.new_var();
    lits.push_back(Literal{static_cast<Var>(v), v % 2 == 0});
  }
  Bdd cube = m.cube(lits);
  EXPECT_DOUBLE_EQ(m.sat_count(cube), 1.0);
  EXPECT_DOUBLE_EQ(m.sat_count(!cube),
                   std::pow(2.0, static_cast<double>(kDeep)) - 1.0);
}

// ---------------------------------------------------------------------------
// Random STGs: the reached state sets of real traversals obey the same
// invariants and agree with the oracle.
// ---------------------------------------------------------------------------

class ComplementEdgeStg : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComplementEdgeStg, ReachedSetsMatchOracleAndStayCanonical) {
  Rng rng{GetParam()};
  const stg::Stg s = testutil::random_stg(rng);
  core::SymbolicStg sym(s);
  core::CofactorEngine engine(sym);
  core::TraversalOptions options;
  options.auto_sift = true;
  const core::TraversalResult r = core::traverse(engine, options);
  Manager& m = sym.manager();

  m.check_invariants();

  const Bdd& reached = r.reached;
  EXPECT_EQ((!(!reached)).ref(), reached.ref());
  EXPECT_EQ(m.count_nodes(reached), m.count_nodes(!reached));

  // The reached set itself when small enough, else its projection onto
  // the signal variables (the paper's binary codes), which always is.
  if (m.support(reached).size() <= 14) {
    expect_matches_oracle(m, reached);
  }
  const Bdd codes = m.exists(reached, sym.place_cube());
  if (!codes.is_terminal()) expect_matches_oracle(m, codes);

  // A forced sift must preserve canonical form and the reached set.
  const double states_before = sym.count_states(reached);
  m.sift();
  m.check_invariants();
  EXPECT_DOUBLE_EQ(sym.count_states(reached), states_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementEdgeStg,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace stgcheck::bdd
