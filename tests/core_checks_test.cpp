// Symbolic checks against the known verdicts of the example nets.
#include <gtest/gtest.h>

#include "core/checks.hpp"
#include "core/implementability.hpp"
#include "stg/generators.hpp"

namespace stgcheck::core {
namespace {

using bdd::Bdd;

struct Checked {
  std::unique_ptr<SymbolicStg> sym;
  TraversalResult traversal;
};

Checked run(const stg::Stg& s) {
  Checked c;
  c.sym = std::make_unique<SymbolicStg>(s);
  c.traversal = traverse(*c.sym);
  EXPECT_TRUE(c.traversal.ok()) << s.name();
  return c;
}

// ---------------------------------------------------------------------------
// Persistency
// ---------------------------------------------------------------------------

TEST(SymPersistency, MarkedGraphsClean) {
  Checked c = run(stg::muller_pipeline(4));
  EXPECT_TRUE(transition_persistency(*c.sym, c.traversal.reached).empty());
  EXPECT_TRUE(signal_persistency(*c.sym, c.traversal.reached).empty());
}

TEST(SymPersistency, Fig3TransitionConflictButSignalPersistent) {
  Checked c = run(stg::examples::fig3_d1());
  EXPECT_FALSE(transition_persistency(*c.sym, c.traversal.reached).empty());
  EXPECT_TRUE(signal_persistency(*c.sym, c.traversal.reached).empty());
}

TEST(SymPersistency, MutexViolatesWithoutArbitration) {
  stg::Stg s = stg::examples::mutex2();
  Checked c = run(s);
  auto violations = signal_persistency(*c.sym, c.traversal.reached);
  ASSERT_FALSE(violations.empty());
  for (const auto& v : violations) {
    EXPECT_FALSE(v.victim_is_input);
    EXPECT_TRUE(v.witness.implies(c.traversal.reached));
  }

  SymPersistencyOptions options;
  options.arbitration_pairs.push_back(
      {s.find_signal("g1"), s.find_signal("g2")});
  EXPECT_TRUE(
      signal_persistency(*c.sym, c.traversal.reached, options).empty());
}

TEST(SymPersistency, InputChoiceLegal) {
  Checked c = run(stg::select_chain(2));
  EXPECT_TRUE(signal_persistency(*c.sym, c.traversal.reached).empty());
  EXPECT_FALSE(transition_persistency(*c.sym, c.traversal.reached).empty());
}

TEST(SymPersistency, OutputKilledByOutputDetected) {
  Checked c = run(stg::examples::fake_asymmetric(/*output_ab=*/true));
  auto violations = signal_persistency(*c.sym, c.traversal.reached);
  ASSERT_FALSE(violations.empty());
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(SymDeterminism, CleanAndDirty) {
  Checked clean = run(stg::examples::vme_read());
  EXPECT_TRUE(determinism_violations(*clean.sym, clean.traversal.reached).is_false());

  Checked dirty = run(stg::examples::nondeterministic_choice());
  Bdd bad = determinism_violations(*dirty.sym, dirty.traversal.reached);
  EXPECT_FALSE(bad.is_false());
  // The violating state is the initial one.
  EXPECT_TRUE(dirty.sym->initial_state().implies(bad));
}

// ---------------------------------------------------------------------------
// Regions and CSC
// ---------------------------------------------------------------------------

TEST(SymCsc, RegionsOfPulseCycle) {
  stg::Stg s = stg::examples::pulse_cycle();
  Checked c = run(s);
  const stg::SignalId b = s.find_signal("b");
  SignalRegions r = signal_regions(*c.sym, c.traversal.reached, b);
  Bdd a_sig = c.sym->signal(s.find_signal("a"));
  Bdd b_sig = c.sym->signal(b);
  // ER(b+) is the code 10; QR(b-) contains 00 and the second 10.
  EXPECT_EQ(r.er_plus, a_sig & !b_sig);
  EXPECT_EQ(r.qr_minus, !b_sig);  // codes 00 and 10
  // The clash: ER(b+) n QR(b-) = {10} != empty.
  EXPECT_FALSE((r.er_plus & r.qr_minus).is_false());
}

TEST(SymCsc, CleanNets) {
  for (const stg::Stg& s :
       {stg::muller_pipeline(3), stg::master_read(2), stg::examples::mutex2(),
        stg::examples::output_cycle_resolved()}) {
    Checked c = run(s);
    SymCscResult r = check_csc(*c.sym, c.traversal.reached);
    EXPECT_TRUE(r.unique_state_coding) << s.name();
    EXPECT_TRUE(r.complete_state_coding) << s.name();
  }
}

TEST(SymCsc, SelectChainCscWithoutUsc) {
  Checked c = run(stg::select_chain(3));
  SymCscResult r = check_csc(*c.sym, c.traversal.reached);
  EXPECT_FALSE(r.unique_state_coding);
  EXPECT_TRUE(r.complete_state_coding);
}

TEST(SymCsc, ViolationsDetected) {
  for (const stg::Stg& s :
       {stg::examples::pulse_cycle(), stg::examples::output_cycle(),
        stg::examples::input_pulse_counter(), stg::examples::vme_read()}) {
    Checked c = run(s);
    SymCscResult r = check_csc(*c.sym, c.traversal.reached);
    EXPECT_FALSE(r.complete_state_coding) << s.name();
    EXPECT_FALSE(r.conflicts.empty()) << s.name();
  }
}

// ---------------------------------------------------------------------------
// Reducibility
// ---------------------------------------------------------------------------

TEST(SymReducibility, Verdicts) {
  // CSC ok: vacuously reducible.
  {
    Checked c = run(stg::muller_pipeline(2));
    SymReducibilityResult r = check_csc_reducibility(*c.sym, c.traversal.reached);
    EXPECT_TRUE(r.csc_satisfied);
    EXPECT_TRUE(r.reducible);
  }
  // output_cycle: reducible (no inputs at all).
  {
    Checked c = run(stg::examples::output_cycle());
    SymReducibilityResult r = check_csc_reducibility(*c.sym, c.traversal.reached);
    EXPECT_FALSE(r.csc_satisfied);
    EXPECT_TRUE(r.reducible);
  }
  // pulse_cycle: irreducible (input-only path joins the contradiction).
  {
    Checked c = run(stg::examples::pulse_cycle());
    SymReducibilityResult r = check_csc_reducibility(*c.sym, c.traversal.reached);
    EXPECT_FALSE(r.csc_satisfied);
    EXPECT_FALSE(r.reducible);
    ASSERT_EQ(r.irreducible_signals.size(), 1u);
    EXPECT_EQ(c.sym->stg().signal_name(r.irreducible_signals[0]), "b");
  }
  // input_pulse_counter: irreducible on y.
  {
    Checked c = run(stg::examples::input_pulse_counter());
    SymReducibilityResult r = check_csc_reducibility(*c.sym, c.traversal.reached);
    EXPECT_FALSE(r.reducible);
  }
}

// ---------------------------------------------------------------------------
// Fake conflicts
// ---------------------------------------------------------------------------

TEST(SymFake, Fig3D1Symmetric) {
  Checked c = run(stg::examples::fig3_d1());
  auto reports = analyze_fake_conflicts(*c.sym, c.traversal.reached);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].symmetric_fake());
  EXPECT_FALSE(check_fake_freedom(*c.sym, c.traversal.reached).fake_free);
}

TEST(SymFake, AsymmetricClassification) {
  Checked c = run(stg::examples::fake_asymmetric());
  auto reports = analyze_fake_conflicts(*c.sym, c.traversal.reached);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].asymmetric_fake());
  // Between two inputs: tolerated.
  EXPECT_TRUE(check_fake_freedom(*c.sym, c.traversal.reached).fake_free);

  Checked c2 = run(stg::examples::fake_asymmetric(/*output_ab=*/true));
  EXPECT_FALSE(check_fake_freedom(*c2.sym, c2.traversal.reached).fake_free);
}

TEST(SymFake, MutexConflictsReal) {
  Checked c = run(stg::examples::mutex2());
  for (const auto& r : analyze_fake_conflicts(*c.sym, c.traversal.reached)) {
    EXPECT_FALSE(r.symmetric_fake());
    EXPECT_FALSE(r.asymmetric_fake());
    EXPECT_TRUE(r.disables_t1 || r.disables_t2);
  }
  EXPECT_TRUE(check_fake_freedom(*c.sym, c.traversal.reached).fake_free);
}

}  // namespace
}  // namespace stgcheck::core
