// Full state graph construction: codes, inference, projections.
#include <gtest/gtest.h>

#include "sg/state_graph.hpp"
#include "stg/generators.hpp"

namespace stgcheck::sg {
namespace {

TEST(StateGraph, HandshakeHasFourStates) {
  stg::Stg stg = stg::examples::pulse_cycle();
  StateGraph g = build_state_graph(stg);
  ASSERT_TRUE(g.complete);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.distinct_markings(), 4u);
  // Codes: 00, 10, 11, 10 -- the famous repeated "10".
  EXPECT_EQ(g.distinct_codes(), 3u);
}

TEST(StateGraph, InitialCodeFromExplicitValues) {
  stg::Stg stg = stg::examples::pulse_cycle();
  StateGraph g = build_state_graph(stg);
  EXPECT_EQ(g.code_string(0), "00");
}

TEST(StateGraph, InitialCodeInferred) {
  // Remove explicit values: inference must still find a=0, b=0 because a+
  // is the first enabled transition and b+ follows.
  stg::Stg stg;
  const stg::SignalId a = stg.add_signal("a", stg::SignalKind::kInput);
  const stg::SignalId b = stg.add_signal("b", stg::SignalKind::kOutput);
  auto ap = stg.add_transition(a, stg::Dir::kPlus);
  auto bp = stg.add_transition(b, stg::Dir::kPlus);
  auto bm = stg.add_transition(b, stg::Dir::kMinus);
  auto am = stg.add_transition(a, stg::Dir::kMinus);
  stg.connect(ap, bp);
  stg.connect(bp, bm);
  stg.connect(bm, am);
  stg.connect(am, ap, 1);
  StateGraph g = build_state_graph(stg);
  EXPECT_EQ(g.code_string(0), "00");
}

TEST(StateGraph, InferenceSeesFallingFirst) {
  // b- is the first b transition: b must start at 1.
  stg::Stg stg;
  const stg::SignalId a = stg.add_signal("a", stg::SignalKind::kInput);
  const stg::SignalId b = stg.add_signal("b", stg::SignalKind::kOutput);
  auto ap = stg.add_transition(a, stg::Dir::kPlus);
  auto bm = stg.add_transition(b, stg::Dir::kMinus);
  auto bp = stg.add_transition(b, stg::Dir::kPlus);
  auto am = stg.add_transition(a, stg::Dir::kMinus);
  stg.connect(ap, bm);
  stg.connect(bm, bp);
  stg.connect(bp, am);
  stg.connect(am, ap, 1);
  StateGraph g = build_state_graph(stg);
  EXPECT_EQ(g.code_string(0), "01");  // a=0 inferred, b=1 inferred
}

TEST(StateGraph, DummiesDoNotChangeCodes) {
  stg::Stg stg;
  const stg::SignalId a = stg.add_signal("a", stg::SignalKind::kInput);
  auto ap = stg.add_transition(a, stg::Dir::kPlus);
  auto eps = stg.add_dummy("eps");
  auto am = stg.add_transition(a, stg::Dir::kMinus);
  stg.connect(ap, eps);
  stg.connect(eps, am);
  stg.connect(am, ap, 1);
  stg.set_initial_value(a, false);
  StateGraph g = build_state_graph(stg);
  ASSERT_TRUE(g.complete);
  EXPECT_EQ(g.size(), 3u);
  // The dummy edge leaves the code unchanged: only 2 distinct codes.
  EXPECT_EQ(g.distinct_codes(), 2u);
}

TEST(StateGraph, FullStateSplitsMarkingsByCode) {
  // input_pulse_counter: 8 markings, and the code (1,1,0) appears twice.
  stg::Stg stg = stg::examples::input_pulse_counter();
  StateGraph g = build_state_graph(stg);
  ASSERT_TRUE(g.complete);
  EXPECT_EQ(g.size(), 8u);
  EXPECT_EQ(g.distinct_markings(), 8u);
  EXPECT_EQ(g.distinct_codes(), 7u);  // the repeated 110
}

TEST(StateGraph, SignalEnabledAndSuccessors) {
  stg::Stg stg = stg::examples::pulse_cycle();
  StateGraph g = build_state_graph(stg);
  const stg::SignalId a = stg.find_signal("a");
  const stg::SignalId b = stg.find_signal("b");
  EXPECT_TRUE(g.signal_enabled(0, a));
  EXPECT_FALSE(g.signal_enabled(0, b));
  const pn::TransitionId ap = stg.net().find_transition("a+");
  auto succ = g.successor(0, ap);
  ASSERT_TRUE(succ.has_value());
  EXPECT_EQ(g.code_string(*succ), "10");
  EXPECT_FALSE(g.successor(0, stg.net().find_transition("a-")).has_value());
}

TEST(StateGraph, StateCapStopsCleanly) {
  stg::Stg stg = stg::muller_pipeline(8);
  StateGraphOptions opts;
  opts.state_cap = 50;
  StateGraph g = build_state_graph(stg, opts);
  EXPECT_FALSE(g.complete);
  EXPECT_EQ(g.size(), 50u);
}

TEST(StateGraph, MutexMatchesExplicitReachability) {
  // Consistent STG: one code per marking, so full SG size == RG size.
  stg::Stg stg = stg::mutex_arbiter(3);
  StateGraph g = build_state_graph(stg);
  ASSERT_TRUE(g.complete);
  EXPECT_EQ(g.size(), g.distinct_markings());
  EXPECT_EQ(g.size(), 32u);  // 2^3 * (1+3)
}

}  // namespace
}  // namespace stgcheck::sg
