// CheckSession: the session owns one check end to end and its event log
// narrates the same facts the report states.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/events.hpp"
#include "core/session.hpp"
#include "stg/generators.hpp"
#include "util/error.hpp"

namespace stgcheck::core {
namespace {

TEST(CheckSession, RunProducesReportAndEncoding) {
  CheckSession session(stg::muller_pipeline(2));
  EXPECT_FALSE(session.has_run());
  EXPECT_EQ(session.encoding(), nullptr);

  const ImplementabilityReport& report = session.run();
  EXPECT_TRUE(session.has_run());
  ASSERT_NE(session.encoding(), nullptr);
  EXPECT_EQ(&report, &session.report());
  EXPECT_EQ(report.level, ImplementabilityLevel::kGateImplementable);
  EXPECT_TRUE(report.traversal.complete);
  EXPECT_GT(report.traversal.stats.states, 0u);
}

TEST(CheckSession, RunTwiceThrows) {
  CheckSession session(stg::muller_pipeline(2));
  session.run();
  EXPECT_THROW(session.run(), ModelError);
}

TEST(CheckSession, EventLogBracketsTheRun) {
  CheckSession session(stg::muller_pipeline(2));
  const ImplementabilityReport& report = session.run();

  const std::vector<EventRecord>& records = session.events().records();
  ASSERT_GE(records.size(), 4u);
  EXPECT_EQ(records.front().kind, EventKind::kSessionStart);
  EXPECT_EQ(records.front().label, session.stg().name());
  EXPECT_EQ(records.back().kind, EventKind::kSessionDone);
  EXPECT_TRUE(records.back().has_ok);
  EXPECT_TRUE(records.back().ok);  // gate-implementable
  EXPECT_EQ(records.back().detail, to_string(report.level));

  // One kPass record per traversal pass, one kTraversalDone.
  std::size_t passes = 0;
  std::size_t traversal_done = 0;
  for (const EventRecord& r : records) {
    if (r.kind == EventKind::kPass) ++passes;
    if (r.kind == EventKind::kTraversalDone) ++traversal_done;
  }
  EXPECT_EQ(passes, report.traversal.stats.passes);
  EXPECT_EQ(traversal_done, 1u);
}

TEST(CheckSession, VerdictRecordsMatchReportFields) {
  CheckSession session(stg::examples::vme_read());  // I/O- but not gate-impl.
  const ImplementabilityReport& report = session.run();
  const EventLog& log = session.events();

  const struct {
    const char* check;
    bool expected;
  } verdicts[] = {
      {"safe", report.safe},
      {"consistent", report.consistent},
      {"deadlock_free", report.deadlock_free},
      {"persistent", report.signal_persistent},
      {"deterministic", report.deterministic},
      {"fake_free", report.fake_free},
      {"usc", report.usc},
      {"csc", report.csc},
  };
  for (const auto& [check, expected] : verdicts) {
    const EventRecord* record = log.find_verdict(check);
    ASSERT_NE(record, nullptr) << check;
    EXPECT_TRUE(record->has_ok) << check;
    EXPECT_EQ(record->ok, expected) << check;
  }
  // vme_read fails CSC, so the reducibility verdict must also be present.
  ASSERT_NE(log.find_verdict("csc_reducible"), nullptr);
  EXPECT_EQ(log.find_verdict("csc_reducible")->ok, report.csc_reducible);
}

TEST(CheckSession, FailedChecksStopEmittingLaterVerdicts) {
  // mutex_arbiter(2) is not persistent: the pipeline still reports every
  // phase it ran, and the persistency verdict carries the violation list.
  CheckSession session(stg::mutex_arbiter(2));
  const ImplementabilityReport& report = session.run();
  EXPECT_FALSE(report.signal_persistent);
  const EventRecord* persistent = session.events().find_verdict("persistent");
  ASSERT_NE(persistent, nullptr);
  EXPECT_FALSE(persistent->ok);
  EXPECT_NE(persistent->detail.find("disabled by"), std::string::npos);
  ASSERT_FALSE(session.events().records().empty());
  EXPECT_FALSE(session.events().records().back().ok);  // not implementable
}

TEST(CheckSession, InjectedClockStampsEveryRecord) {
  ManualClock clock;
  clock.set(41.5);
  CheckSession session(stg::muller_pipeline(2), {}, &clock);
  session.run();
  ASSERT_FALSE(session.events().records().empty());
  for (const EventRecord& r : session.events().records()) {
    EXPECT_EQ(r.at, 41.5);  // time never advanced during the run
  }
}

TEST(CheckSession, SinkStreamsEveryRecordInOrder) {
  std::vector<EventKind> streamed;
  CheckSession session(stg::muller_pipeline(2), {}, nullptr,
                       [&](const EventRecord& r) { streamed.push_back(r.kind); });
  session.run();
  const std::vector<EventRecord>& records = session.events().records();
  ASSERT_EQ(streamed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(streamed[i], records[i].kind);
  }
}

TEST(CheckSession, SessionsDoNotShareState) {
  // Two sessions over the same net: separate managers, identical results,
  // and the second's gauges are unaffected by the first having run.
  CheckSession first(stg::master_read(2));
  CheckSession second(stg::master_read(2));
  const ImplementabilityReport& a = first.run();
  const ImplementabilityReport& b = second.run();
  ASSERT_NE(first.encoding(), nullptr);
  ASSERT_NE(second.encoding(), nullptr);
  EXPECT_NE(&first.encoding()->manager(), &second.encoding()->manager());
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.traversal.stats.states, b.traversal.stats.states);
  EXPECT_EQ(a.traversal.stats.passes, b.traversal.stats.passes);
  EXPECT_EQ(a.traversal.stats.final_reached_nodes,
            b.traversal.stats.final_reached_nodes);
}

TEST(CheckSession, OptionsAreResolvedPerSession) {
  SessionOptions options;
  options.check.strategy = TraversalStrategy::kFrontierBfs;
  CheckSession bfs(stg::muller_pipeline(2), options);
  CheckSession chained(stg::muller_pipeline(2));
  const ImplementabilityReport& a = bfs.run();
  const ImplementabilityReport& c = chained.run();
  EXPECT_EQ(bfs.options().check.strategy, TraversalStrategy::kFrontierBfs);
  EXPECT_EQ(chained.options().check.strategy, TraversalStrategy::kChaining);
  // Different strategies, same fixpoint.
  EXPECT_EQ(a.traversal.stats.states, c.traversal.stats.states);
}

}  // namespace
}  // namespace stgcheck::core
