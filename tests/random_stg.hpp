// Shared random-STG generator for property tests (image engines, dynamic
// reordering). Kept out of any test's anonymous namespace so every suite
// draws from the same distribution.
#pragma once

#include <string>
#include <vector>

#include "stg/stg.hpp"
#include "util/rng.hpp"

namespace stgcheck::testutil {

/// A random safe STG: a few token rings (one token each, so the net is a
/// safe marked graph) whose transitions draw from a shared signal pool
/// with alternating directions per signal.
inline stg::Stg random_stg(Rng& rng) {
  stg::Stg s;
  s.set_name("random");
  const std::size_t n_signals = 2 + rng.below(4);
  std::vector<stg::SignalId> sigs;
  for (std::size_t i = 0; i < n_signals; ++i) {
    sigs.push_back(s.add_signal("s" + std::to_string(i),
                                rng.flip() ? stg::SignalKind::kInput
                                           : stg::SignalKind::kOutput));
  }
  std::vector<stg::Dir> next_dir(n_signals, stg::Dir::kPlus);
  std::size_t round_robin = 0;
  const std::size_t n_rings = 1 + rng.below(3);
  for (std::size_t ring = 0; ring < n_rings; ++ring) {
    const std::size_t len = 2 + rng.below(5);
    std::vector<pn::TransitionId> ts;
    for (std::size_t j = 0; j < len; ++j) {
      // Guarantee every signal is used before going fully random.
      const stg::SignalId sid = round_robin < n_signals
                                    ? sigs[round_robin++]
                                    : sigs[rng.below(n_signals)];
      const stg::Dir dir = next_dir[sid];
      next_dir[sid] =
          dir == stg::Dir::kPlus ? stg::Dir::kMinus : stg::Dir::kPlus;
      ts.push_back(s.add_transition(sid, dir));
    }
    for (std::size_t j = 0; j < len; ++j) {
      s.connect(ts[j], ts[(j + 1) % len], j == 0 ? 1 : 0);
    }
  }
  // Known initial values (first occurrence of each signal is a rise).
  for (stg::SignalId sid : sigs) s.set_initial_value(sid, false);
  return s;
}

}  // namespace stgcheck::testutil
