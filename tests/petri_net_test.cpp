// Net construction, marking semantics, firing rules and validation.
#include <gtest/gtest.h>

#include "petri/petri_net.hpp"
#include "util/error.hpp"

namespace stgcheck::pn {
namespace {

/// p0 -> t0 -> p1 -> t1 -> p0 (a 2-place cycle with one token).
PetriNet ring2() {
  PetriNet net;
  PlaceId p0 = net.add_place("p0", 1);
  PlaceId p1 = net.add_place("p1", 0);
  TransitionId t0 = net.add_transition("t0");
  TransitionId t1 = net.add_transition("t1");
  net.add_arc_pt(p0, t0);
  net.add_arc_tp(t0, p1);
  net.add_arc_pt(p1, t1);
  net.add_arc_tp(t1, p0);
  return net;
}

TEST(PetriNet, AddAndLookup) {
  PetriNet net;
  PlaceId p = net.add_place("p", 1);
  TransitionId t = net.add_transition("t");
  EXPECT_EQ(net.place_count(), 1u);
  EXPECT_EQ(net.transition_count(), 1u);
  EXPECT_EQ(net.find_place("p"), p);
  EXPECT_EQ(net.find_transition("t"), t);
  EXPECT_EQ(net.find_place("missing"), kNoId);
  EXPECT_EQ(net.find_transition("missing"), kNoId);
  EXPECT_EQ(net.place_name(p), "p");
  EXPECT_EQ(net.transition_name(t), "t");
}

TEST(PetriNet, DuplicateNamesRejected) {
  PetriNet net;
  net.add_place("p");
  net.add_transition("t");
  EXPECT_THROW(net.add_place("p"), ModelError);
  EXPECT_THROW(net.add_transition("t"), ModelError);
  EXPECT_THROW(net.add_place(""), ModelError);
  EXPECT_THROW(net.add_transition(""), ModelError);
}

TEST(PetriNet, DuplicateArcsRejected) {
  PetriNet net;
  PlaceId p = net.add_place("p");
  TransitionId t = net.add_transition("t");
  net.add_arc_pt(p, t);
  EXPECT_THROW(net.add_arc_pt(p, t), ModelError);
  net.add_arc_tp(t, p);
  EXPECT_THROW(net.add_arc_tp(t, p), ModelError);
}

TEST(PetriNet, ArcToUnknownIdRejected) {
  PetriNet net;
  PlaceId p = net.add_place("p");
  TransitionId t = net.add_transition("t");
  EXPECT_THROW(net.add_arc_pt(PlaceId{5}, t), ModelError);
  EXPECT_THROW(net.add_arc_tp(t, PlaceId{5}), ModelError);
  EXPECT_THROW(net.add_arc_pt(p, TransitionId{5}), ModelError);
}

TEST(PetriNet, PresetPostsetAdjacency) {
  PetriNet net = ring2();
  TransitionId t0 = net.find_transition("t0");
  PlaceId p0 = net.find_place("p0");
  PlaceId p1 = net.find_place("p1");
  ASSERT_EQ(net.preset(t0).size(), 1u);
  EXPECT_EQ(net.preset(t0)[0], p0);
  ASSERT_EQ(net.postset(t0).size(), 1u);
  EXPECT_EQ(net.postset(t0)[0], p1);
  ASSERT_EQ(net.postset_of_place(p0).size(), 1u);
  EXPECT_EQ(net.postset_of_place(p0)[0], t0);
  ASSERT_EQ(net.preset_of_place(p0).size(), 1u);
  EXPECT_EQ(net.preset_of_place(p0)[0], net.find_transition("t1"));
}

TEST(PetriNet, EnablingAndFiring) {
  PetriNet net = ring2();
  TransitionId t0 = net.find_transition("t0");
  TransitionId t1 = net.find_transition("t1");
  const Marking& m0 = net.initial_marking();
  EXPECT_TRUE(net.enabled(m0, t0));
  EXPECT_FALSE(net.enabled(m0, t1));

  Marking m1 = net.fire(m0, t0);
  EXPECT_EQ(m1.tokens(net.find_place("p0")), 0);
  EXPECT_EQ(m1.tokens(net.find_place("p1")), 1);
  EXPECT_TRUE(net.enabled(m1, t1));

  Marking m2 = net.fire(m1, t1);
  EXPECT_EQ(m2, m0);  // back to the start
}

TEST(PetriNet, FiringDisabledThrows) {
  PetriNet net = ring2();
  TransitionId t1 = net.find_transition("t1");
  EXPECT_THROW(net.fire(net.initial_marking(), t1), ModelError);
}

TEST(PetriNet, BackwardFiringInvertsForward) {
  PetriNet net = ring2();
  TransitionId t0 = net.find_transition("t0");
  const Marking& m0 = net.initial_marking();
  Marking m1 = net.fire(m0, t0);
  EXPECT_TRUE(net.backward_enabled(m1, t0));
  EXPECT_FALSE(net.backward_enabled(m0, t0));
  EXPECT_EQ(net.fire_backward(m1, t0), m0);
}

TEST(PetriNet, EnabledTransitionsList) {
  PetriNet net;
  PlaceId p = net.add_place("p", 1);
  TransitionId a = net.add_transition("a");
  TransitionId b = net.add_transition("b");
  net.add_arc_pt(p, a);
  net.add_arc_pt(p, b);
  net.add_arc_tp(a, p);
  net.add_arc_tp(b, p);
  auto enabled = net.enabled_transitions(net.initial_marking());
  ASSERT_EQ(enabled.size(), 2u);
  EXPECT_EQ(enabled[0], a);
  EXPECT_EQ(enabled[1], b);
}

TEST(PetriNet, ValidateRejectsEmptyPreset) {
  PetriNet net;
  net.add_place("p");
  TransitionId t = net.add_transition("t");
  net.add_arc_tp(t, PlaceId{0});
  EXPECT_THROW(net.validate(), ModelError);
}

TEST(PetriNet, ValidateAcceptsWellFormed) {
  PetriNet net = ring2();
  EXPECT_NO_THROW(net.validate());
}

TEST(PetriNet, InitialMarkingUpdates) {
  PetriNet net = ring2();
  Marking m(net.place_count());
  m.set_tokens(net.find_place("p1"), 1);
  net.set_initial_marking(m);
  EXPECT_EQ(net.initial_marking().tokens(net.find_place("p1")), 1);
  EXPECT_EQ(net.initial_marking().tokens(net.find_place("p0")), 0);

  net.set_initial_tokens(net.find_place("p0"), 2);
  EXPECT_EQ(net.initial_marking().tokens(net.find_place("p0")), 2);

  Marking wrong(1);
  EXPECT_THROW(net.set_initial_marking(wrong), ModelError);
}

TEST(Marking, DominationAndCounts) {
  Marking a(3);
  a.set_tokens(0, 1);
  a.set_tokens(1, 2);
  Marking b(3);
  b.set_tokens(0, 1);
  b.set_tokens(1, 1);
  EXPECT_TRUE(a.strictly_dominates(b));
  EXPECT_FALSE(b.strictly_dominates(a));
  EXPECT_FALSE(a.strictly_dominates(a));  // needs strict inequality
  EXPECT_EQ(a.total_tokens(), 3u);
  EXPECT_EQ(a.max_tokens(), 2);
}

TEST(Marking, HashDistinguishesAndAgrees) {
  Marking a(2);
  a.set_tokens(0, 1);
  Marking b(2);
  b.set_tokens(1, 1);
  EXPECT_NE(a, b);
  Marking a2(2);
  a2.set_tokens(0, 1);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(a.hash(), a2.hash());
}

}  // namespace
}  // namespace stgcheck::pn
