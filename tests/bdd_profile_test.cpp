// Kernel observability (PR 10): the per-op profile (Manager::profile()),
// the ManagerStats cache-group split, and the pool telemetry surface.
//
// The load-bearing regression here is the partition law: the four cache
// groups (binary ops / REACH / n-ary multi / permute memo) must sum to
// exactly the aggregate cache_lookups / cache_hits. Before the split, the
// striped multi-operand cache and the permute memo were folded into the
// binary totals, which skewed cache_hit_rate() on scheduled and templated
// runs -- this test pins the accounting so no future cache can silently
// fall outside the groups.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/trace.hpp"

namespace stgcheck::bdd {
namespace {

/// A manager with `pairs` interleaved twin pairs (state var 2i, its
/// next-state twin 2i + 1) and a workload that exercises every cache
/// group: binary ops, n-ary and_exists_multi, permute, and the REACH
/// saturation with its in-kernel rel_next firings.
struct Workload {
  Manager m;
  std::vector<Bdd> vars;

  explicit Workload(std::size_t pairs) {
    for (std::size_t i = 0; i < pairs; ++i) {
      m.new_var("x" + std::to_string(i));
      m.new_var("x" + std::to_string(i) + "'");
    }
    for (Var v = 0; v < m.var_count(); ++v) vars.push_back(m.var(v));
  }

  /// A token-ring transition relation over the twin pairs and an initial
  /// state, driven through reach() -- fires rel_next in-kernel.
  void run_all_ops() {
    const std::size_t pairs = vars.size() / 2;
    // Binary ops + ITE + exists.
    Bdd f = vars[0] ^ vars[2];
    f = m.ite(f, vars[4], !vars[0]);
    f = m.exists(f & vars[2], m.positive_cube({0}));
    // n-ary multi-operand product (its own striped cache; two conjuncts
    // would delegate to the binary and_exists path, so pass three).
    const Bdd multi = m.and_exists_multi(
        {vars[0] | vars[2], vars[2] | vars[4], vars[4] | !vars[0]},
        m.positive_cube({2}));
    (void)multi;
    // Permute (its own memo).
    std::vector<Var> perm(m.var_count());
    for (Var v = 0; v < perm.size(); ++v) perm[v] = v;
    perm[0] = 2;
    perm[2] = 0;
    (void)m.permute(f, perm);
    // REACH: token moves around the ring; every rule i moves the token
    // from position i to i + 1 (mod pairs).
    std::vector<ReachRelation> rules;
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::size_t j = (i + 1) % pairs;
      ReachRelation r;
      r.rel = vars[2 * i] & !vars[2 * i + 1] & !vars[2 * j] & vars[2 * j + 1];
      r.support = m.positive_cube({static_cast<Var>(2 * i),
                                   static_cast<Var>(2 * j)});
      rules.push_back(r);
    }
    Bdd init = vars[0];
    for (std::size_t i = 1; i < pairs; ++i) init &= !vars[2 * i];
    (void)m.reach(init, rules);
  }
};

TEST(Profile, CacheGroupsPartitionAggregate) {
  Workload w(4);
  w.run_all_ops();
  const ManagerStats s = w.m.stats();
  // Every group saw traffic in this workload.
  EXPECT_GT(s.binary_cache_lookups, 0u);
  EXPECT_GT(s.reach_cache_lookups, 0u);
  EXPECT_GT(s.multi_cache_lookups, 0u);
  EXPECT_GT(s.permute_cache_lookups, 0u);
  // The partition law: the groups sum to exactly the aggregate.
  EXPECT_EQ(s.binary_cache_lookups + s.reach_cache_lookups +
                s.multi_cache_lookups + s.permute_cache_lookups,
            s.cache_lookups);
  EXPECT_EQ(s.binary_cache_hits + s.reach_cache_hits + s.multi_cache_hits +
                s.permute_cache_hits,
            s.cache_hits);
  // Group rates are rates.
  for (const double rate :
       {s.binary_cache_hit_rate(), s.reach_cache_hit_rate(),
        s.multi_cache_hit_rate(), s.permute_cache_hit_rate()}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
}

TEST(Profile, PerOpCallCountsAreUnconditional) {
  Workload w(4);
  ASSERT_FALSE(w.m.profiling());  // disarmed by default
  w.run_all_ops();
  const ManagerProfile prof = w.m.profile();
  EXPECT_FALSE(prof.timings_armed);
  // Calls count even disarmed (they ride the existing counters)...
  EXPECT_GT(prof.op(OpKind::kAnd).calls, 0u);
  EXPECT_GT(prof.op(OpKind::kIte).calls, 0u);
  EXPECT_GT(prof.op(OpKind::kExists).calls, 0u);
  EXPECT_GT(prof.op(OpKind::kAndExistsMulti).calls, 0u);
  EXPECT_GT(prof.op(OpKind::kPermute).calls, 0u);
  EXPECT_GT(prof.op(OpKind::kReach).calls, 0u);
  // ...including the in-saturation rule firings on the rel_next slot,
  // even though the public rel_next wrapper never ran.
  EXPECT_GT(prof.op(OpKind::kRelNext).calls, 0u);
  // ...but the disarmed kernel reads no clock.
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    EXPECT_EQ(prof.ops[k].seconds, 0.0);
  }
  EXPECT_EQ(prof.gc_seconds, 0.0);
  EXPECT_EQ(prof.sift_seconds, 0.0);
}

TEST(Profile, ArmedTimingsAccumulate) {
  Workload w(4);
  w.m.set_profiling(true);
  w.run_all_ops();
  (void)w.m.sift();
  const ManagerProfile prof = w.m.profile();
  EXPECT_TRUE(prof.timings_armed);
  EXPECT_GT(prof.op(OpKind::kReach).seconds, 0.0);
  EXPECT_EQ(prof.sift_runs, 1u);
  EXPECT_GT(prof.sift_seconds, 0.0);
}

TEST(Profile, ArmedAndDisarmedResultsIdentical) {
  // set_profiling only reads clocks; results must be bit-identical.
  Workload armed(4);
  armed.m.set_profiling(true);
  Workload plain(4);
  armed.run_all_ops();
  plain.run_all_ops();
  const ManagerStats a = armed.m.stats();
  const ManagerStats b = plain.m.stats();
  EXPECT_EQ(a.live_count, b.live_count);
  EXPECT_EQ(a.cache_lookups, b.cache_lookups);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
}

TEST(Profile, OpKindNamesAreStable) {
  // The names are schema: the session's metrics snapshot builds counter
  // names from them ("op_calls_rel_next" etc.).
  EXPECT_STREQ(to_string(OpKind::kAnd), "and");
  EXPECT_STREQ(to_string(OpKind::kAndExistsMulti), "and_exists_multi");
  EXPECT_STREQ(to_string(OpKind::kRelNext), "rel_next");
  EXPECT_STREQ(to_string(OpKind::kReach), "reach");
  EXPECT_STREQ(to_string(OpKind::kPermute), "permute");
}

TEST(Profile, PoolTelemetryEmptyWithoutPool) {
  Workload w(4);  // run_all_ops needs at least three twin pairs
  w.run_all_ops();
  const PoolTelemetry t = w.m.pool_telemetry();
  EXPECT_TRUE(t.workers.empty());
  EXPECT_EQ(t.total.tasks_run, 0u);
  EXPECT_EQ(t.steal_rate, 0.0);
}

TEST(Profile, TraceSpansRecordGcAndReachFirings) {
  Workload w(4);
  TraceRecorder rec;
  w.m.set_trace(&rec);
  ASSERT_EQ(w.m.trace(), &rec);
  w.run_all_ops();
  w.m.collect_garbage();
  w.m.set_trace(nullptr);
  std::size_t firings = 0;
  std::size_t gcs = 0;
  const json::Value doc = rec.to_json();
  const json::Array& events = doc.at("traceEvents").as_array();
  for (const json::Value& e : events) {
    const std::string name = e.at("name").as_string();
    if (name == "reach_rule") ++firings;
    if (name == "gc") ++gcs;
  }
  EXPECT_GT(firings, 0u);
  EXPECT_GT(gcs, 0u);
  // One span per counted in-saturation firing.
  EXPECT_EQ(firings, w.m.profile().op(OpKind::kRelNext).calls);
}

}  // namespace
}  // namespace stgcheck::bdd
