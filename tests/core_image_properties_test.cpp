// Algebraic properties of the symbolic image/preimage operators on real
// reachable sets, swept over every transition of several nets.
#include <gtest/gtest.h>

#include <memory>

#include "core/traversal.hpp"
#include "stg/generators.hpp"

namespace stgcheck::core {
namespace {

using bdd::Bdd;

class ImageProperties : public ::testing::TestWithParam<int> {
 protected:
  static stg::Stg make(int index) {
    switch (index) {
      case 0: return stg::muller_pipeline(4);
      case 1: return stg::master_read(3);
      case 2: return stg::mutex_arbiter(3);
      case 3: return stg::select_chain(2);
      default: return stg::examples::vme_read();
    }
  }

  void SetUp() override {
    net = std::make_unique<stg::Stg>(make(GetParam()));
    sym = std::make_unique<SymbolicStg>(*net);
    traversal = traverse(*sym);
    ASSERT_TRUE(traversal.ok());
  }

  /// The subset of `states` from which t actually fires: enabled, with the
  /// fired signal at its pre-transition value.
  Bdd fireable(pn::TransitionId t, const Bdd& states) {
    Bdd result = states & sym->enabling_cube(t);
    const stg::TransitionLabel& label = net->label(t);
    if (!label.is_dummy()) {
      const Bdd sig = sym->signal(label.signal);
      result &= label.dir == stg::Dir::kPlus ? !sig : sig;
    }
    return result;
  }

  std::unique_ptr<stg::Stg> net;
  std::unique_ptr<SymbolicStg> sym;
  TraversalResult traversal;
};

TEST_P(ImageProperties, ImageStaysWithinReached) {
  // R is a fixed point: delta(R, t) <= R for every t.
  for (pn::TransitionId t = 0; t < net->net().transition_count(); ++t) {
    EXPECT_TRUE(sym->image(traversal.reached, t).implies(traversal.reached))
        << net->format_label(t);
  }
}

TEST_P(ImageProperties, PreimageInvertsImageExactly) {
  // preimage(image(S, t), t) == fireable part of S, per transition, for
  // S = Reached (the per-transition successor map is injective on
  // consistent safe states).
  for (pn::TransitionId t = 0; t < net->net().transition_count(); ++t) {
    const Bdd forward = sym->image(traversal.reached, t);
    EXPECT_EQ(sym->preimage(forward, t), fireable(t, traversal.reached))
        << net->format_label(t);
  }
}

TEST_P(ImageProperties, ImageInvertsPreimageExactly) {
  for (pn::TransitionId t = 0; t < net->net().transition_count(); ++t) {
    const Bdd backward = sym->preimage(traversal.reached, t);
    // Every pre-state fires into reached; firing it must land exactly on
    // the states whose preimage was non-empty.
    EXPECT_EQ(sym->image(backward, t),
              sym->image(fireable(t, backward), t))
        << net->format_label(t);
    EXPECT_TRUE(sym->image(backward, t).implies(traversal.reached));
  }
}

TEST_P(ImageProperties, ImageIsMonotoneAndAdditive) {
  // delta(A u B) == delta(A) u delta(B): the image distributes over union.
  const std::vector<bdd::Var> all_vars = [&] {
    std::vector<bdd::Var> vars = sym->place_var_list();
    const auto signals = sym->signal_var_list();
    vars.insert(vars.end(), signals.begin(), signals.end());
    return vars;
  }();
  // Split the reached set into one state and the rest.
  const Bdd one = sym->manager().pick_one_minterm(traversal.reached, all_vars);
  const Bdd rest = traversal.reached.minus(one);
  for (pn::TransitionId t = 0; t < net->net().transition_count(); ++t) {
    EXPECT_EQ(sym->image(traversal.reached, t),
              sym->image(one, t) | sym->image(rest, t))
        << net->format_label(t);
  }
}

TEST_P(ImageProperties, StateCountsConserveOverImage) {
  // The image of the fireable part has exactly as many states (the
  // per-transition map is a bijection between fireable states and their
  // successors).
  for (pn::TransitionId t = 0; t < net->net().transition_count(); ++t) {
    const Bdd source = fireable(t, traversal.reached);
    const Bdd target = sym->image(traversal.reached, t);
    EXPECT_DOUBLE_EQ(sym->count_states(source), sym->count_states(target))
        << net->format_label(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Nets, ImageProperties, ::testing::Range(0, 5));

TEST(OrderingVariants, ClusteredAgreesWithInterleaved) {
  for (const stg::Stg& s :
       {stg::master_read(4), stg::muller_pipeline(6), stg::mutex_arbiter(4)}) {
    SymbolicStg a(s, Ordering::kInterleaved);
    SymbolicStg b(s, Ordering::kClustered);
    TraversalResult ra = traverse(a);
    TraversalResult rb = traverse(b);
    EXPECT_DOUBLE_EQ(ra.stats.states, rb.stats.states) << s.name();
    EXPECT_EQ(ra.ok(), rb.ok());
  }
}

TEST(AutoSift, OnAndOffAgree) {
  stg::Stg s = stg::master_read(5);
  SymbolicStg with(s);
  SymbolicStg without(s);
  TraversalOptions opt_on;
  opt_on.auto_sift = true;
  opt_on.auto_sift_threshold = 100;  // force reordering activity
  TraversalOptions opt_off;
  opt_off.auto_sift = false;
  TraversalResult r_on = traverse(with, opt_on);
  TraversalResult r_off = traverse(without, opt_off);
  EXPECT_TRUE(r_on.ok());
  EXPECT_DOUBLE_EQ(r_on.stats.states, r_off.stats.states);
  EXPECT_DOUBLE_EQ(r_on.stats.markings, r_off.stats.markings);
}

}  // namespace
}  // namespace stgcheck::core
