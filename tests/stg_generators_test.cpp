// Generator families: structural invariants, reachable-state growth, and
// the named roster of scaled instances the bench and CI pin.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/saturation.hpp"
#include "core/traversal.hpp"
#include "petri/reachability.hpp"
#include "petri/structural.hpp"
#include "stg/astg_io.hpp"
#include "stg/generators.hpp"
#include "util/error.hpp"

namespace stgcheck::stg {
namespace {

TEST(Generators, RejectZeroSize) {
  EXPECT_THROW(muller_pipeline(0), ModelError);
  EXPECT_THROW(master_read(0), ModelError);
  EXPECT_THROW(mutex_arbiter(0), ModelError);
  EXPECT_THROW(select_chain(0), ModelError);
}

class MullerPipeline : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MullerPipeline, IsSafeLiveMarkedGraph) {
  const std::size_t n = GetParam();
  Stg stg = muller_pipeline(n);
  stg.validate();
  EXPECT_EQ(stg.signal_count(), n + 1);
  EXPECT_TRUE(pn::is_marked_graph(stg.net()));

  pn::ReachabilityGraph g = pn::explore(stg.net());
  ASSERT_TRUE(g.complete);
  // Safe and deadlock-free.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LE(g.markings[i].max_tokens(), 1);
    EXPECT_FALSE(g.edges[i].empty()) << "deadlock at marking " << i;
  }
}

TEST_P(MullerPipeline, StateCountGrowsExponentially) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const std::size_t smaller = pn::explore(muller_pipeline(n - 1).net()).size();
  const std::size_t larger = pn::explore(muller_pipeline(n).net()).size();
  // Golden-ratio-like growth: strictly more than 1.3x per stage.
  EXPECT_GT(static_cast<double>(larger), 1.3 * static_cast<double>(smaller));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MullerPipeline, ::testing::Values(1, 2, 3, 5, 8));

class MasterRead : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MasterRead, IsSafeLiveMarkedGraph) {
  const std::size_t n = GetParam();
  Stg stg = master_read(n);
  stg.validate();
  EXPECT_EQ(stg.signal_count(), 2 * n + 2);  // n channels + go/done bracket
  EXPECT_TRUE(pn::is_marked_graph(stg.net()));
  pn::ReachabilityGraph g = pn::explore(stg.net());
  ASSERT_TRUE(g.complete);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LE(g.markings[i].max_tokens(), 1);
    EXPECT_FALSE(g.edges[i].empty()) << "deadlock at marking " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MasterRead, ::testing::Values(1, 2, 3, 4));

class MutexArbiter : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MutexArbiter, MutualExclusionHolds) {
  const std::size_t n = GetParam();
  Stg stg = mutex_arbiter(n);
  stg.validate();
  // With a single user there is no competition for the token, so the net
  // degenerates to a marked graph.
  EXPECT_EQ(pn::is_marked_graph(stg.net()), n == 1);

  // The g+ transitions all conflict on the "free" place.
  auto conflicts = pn::conflict_places(stg.net());
  if (n > 1) {
    ASSERT_EQ(conflicts.size(), 1u);
    EXPECT_EQ(stg.net().place_name(conflicts[0]), "free");
  }

  // No reachable marking has two users in the critical section.
  pn::ReachabilityGraph g = pn::explore(stg.net());
  ASSERT_TRUE(g.complete);
  std::vector<pn::PlaceId> cs(n);
  for (std::size_t i = 0; i < n; ++i) {
    cs[i] = stg.net().find_place("cs" + std::to_string(i + 1));
  }
  for (const pn::Marking& m : g.markings) {
    int in_cs = 0;
    for (std::size_t i = 0; i < n; ++i) in_cs += m.tokens(cs[i]);
    EXPECT_LE(in_cs, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MutexArbiter, ::testing::Values(1, 2, 3, 4));

TEST(MutexArbiter, StateCountFormula) {
  // Users are independent 2-state cycles except that at most one may hold
  // the token in {cs, done}: states = 2^n + n * 2 * 2^(n-1) = 2^n (1 + n).
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    const std::size_t states = pn::explore(mutex_arbiter(n).net()).size();
    EXPECT_EQ(states, (std::size_t{1} << n) * (1 + n)) << "n=" << n;
  }
}

class SelectChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SelectChain, LinearStateCount) {
  const std::size_t n = GetParam();
  Stg stg = select_chain(n);
  stg.validate();
  EXPECT_TRUE(pn::is_free_choice(stg.net()));
  pn::ReachabilityGraph g = pn::explore(stg.net());
  ASSERT_TRUE(g.complete);
  // One control token: 1 choice marking + 2 branches x 3 markings per stage.
  EXPECT_EQ(g.size(), 7 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SelectChain, ::testing::Values(1, 2, 3, 6));

// ---------------------------------------------------------------------------
// The named family roster (scaled component-count axis)
// ---------------------------------------------------------------------------

TEST(FamilyRoster, ContainsClassicAndScaledTiers) {
  std::set<std::string> names;
  for (const FamilyInstance& f : family_instances()) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
  }
  for (const char* required :
       {"muller16", "muller32", "muller64", "mread8", "mutex12", "mutex24",
        "mutex48", "select24", "select48", "select96"}) {
    EXPECT_EQ(names.count(required), 1u) << required;
  }
}

TEST(FamilyRoster, MakeFamilyInstanceMatchesTheTable) {
  for (const FamilyInstance& f : family_instances()) {
    const Stg by_name = make_family_instance(f.name);
    const Stg by_table = f.make(f.n);
    EXPECT_EQ(by_name.signal_count(), by_table.signal_count()) << f.name;
    EXPECT_EQ(by_name.net().transition_count(),
              by_table.net().transition_count())
        << f.name;
    EXPECT_EQ(by_name.net().place_count(), by_table.net().place_count())
        << f.name;
  }
  EXPECT_THROW(make_family_instance("muller17"), ModelError);
  EXPECT_THROW(make_family_instance(""), ModelError);
}

TEST(FamilyRoster, ScaledStateCountsMatchClosedForms) {
  // Closed forms, symbolically countable where explicit exploration is
  // infeasible: muller_pipeline(n) has 2^(n+1) states, mutex_arbiter(n)
  // has 2^n (1 + n), select_chain(n) has 7 n. The muller and mutex counts
  // are exact in a double (few significant bits).
  const struct {
    const char* name;
    double states;
  } rows[] = {
      {"muller16", std::ldexp(1.0, 17)},
      {"muller32", std::ldexp(1.0, 33)},
      {"muller64", std::ldexp(1.0, 65)},
      {"mutex12", std::ldexp(13.0, 12)},
      {"mutex24", std::ldexp(25.0, 24)},
      {"mutex48", std::ldexp(49.0, 48)},
      {"select24", 7.0 * 24},
      {"select48", 7.0 * 48},
  };
  for (const auto& row : rows) {
    Stg s = make_family_instance(row.name);
    core::SymbolicStg sym(s, core::Ordering::kInterleaved, 1 << 14,
                          /*with_primed_vars=*/true);
    core::SaturationEngine engine(sym);
    const core::TraversalResult r = core::traverse(engine);
    ASSERT_TRUE(r.ok()) << row.name;
    EXPECT_DOUBLE_EQ(r.stats.states, row.states) << row.name;
  }
  // select96's code-space count overflows a double (the bench reports it
  // as Infinity), but its marking count is linear, so the explicit
  // explorer covers the largest tier.
  EXPECT_EQ(pn::explore(make_family_instance("select96").net()).size(),
            7u * 96);
}

TEST(FamilyRoster, ScaledInstancesRoundTripThroughAstg) {
  for (const char* name :
       {"muller32", "muller64", "mutex24", "mutex48", "select48", "select96"}) {
    const Stg original = make_family_instance(name);
    const Stg reparsed = parse_astg_string(write_astg_string(original));
    EXPECT_NO_THROW(reparsed.validate()) << name;
    EXPECT_EQ(reparsed.name(), original.name()) << name;
    EXPECT_EQ(reparsed.signal_count(), original.signal_count()) << name;
    EXPECT_EQ(reparsed.net().transition_count(),
              original.net().transition_count())
        << name;
    EXPECT_EQ(reparsed.net().place_count(), original.net().place_count())
        << name;
    for (SignalId s = 0; s < original.signal_count(); ++s) {
      const SignalId rs = reparsed.find_signal(original.signal_name(s));
      ASSERT_NE(rs, kNoSignal) << name;
      EXPECT_EQ(reparsed.signal_kind(rs), original.signal_kind(s)) << name;
      EXPECT_EQ(reparsed.initial_value(rs), original.initial_value(s)) << name;
    }
    // The linear select tiers are cheap to explore explicitly: the
    // round-trip preserves the reachability graph size, not just the
    // declarations.
    if (std::string(name) == "select48" || std::string(name) == "select96") {
      EXPECT_EQ(pn::explore(reparsed.net()).size(),
                pn::explore(original.net()).size())
          << name;
    }
  }
}

TEST(Examples, Mutex2MatchesFigure1Shape) {
  Stg stg = examples::mutex2();
  // 2 users x (r, g) = 4 signals, 8 transitions; 9 places (4 per user + free).
  EXPECT_EQ(stg.signal_count(), 4u);
  EXPECT_EQ(stg.net().transition_count(), 8u);
  EXPECT_EQ(stg.net().place_count(), 9u);
  EXPECT_EQ(pn::explore(stg.net()).size(), 12u);  // 2^2 * (1+2)
}

TEST(Examples, Fig3NetsShareStateGraphSize) {
  // D1 and D2 realize the same SG (Sec. 3.2): same number of reachable
  // markings and the same language over codes; here we check sizes.
  Stg d1 = examples::fig3_d1();
  Stg d2 = examples::fig3_d2();
  pn::ReachabilityGraph g1 = pn::explore(d1.net());
  pn::ReachabilityGraph g2 = pn::explore(d2.net());
  EXPECT_EQ(g1.size(), 5u);
  EXPECT_EQ(g2.size(), 5u);
}

TEST(Examples, UnsafeRingIsTwoBounded) {
  Stg stg = examples::unsafe_two_token_ring();
  pn::BoundednessResult r = pn::check_boundedness(stg.net());
  EXPECT_TRUE(r.bounded);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.bound, 2);
  EXPECT_FALSE(r.is_safe());
}

TEST(Examples, AllFixedNetsValidate) {
  for (Stg stg :
       {examples::mutex2(), examples::fig3_d1(), examples::fig3_d2(),
        examples::fake_asymmetric(), examples::inconsistent_rise_rise(),
        examples::unsafe_two_token_ring(), examples::nondeterministic_choice(),
        examples::noncommutative_diamond(), examples::pulse_cycle(),
        examples::output_cycle(), examples::output_cycle_resolved(),
        examples::input_pulse_counter(), examples::vme_read()}) {
    EXPECT_NO_THROW(stg.validate()) << stg.name();
    pn::ReachabilityGraph g = pn::explore(stg.net());
    EXPECT_TRUE(g.complete) << stg.name();
    EXPECT_GT(g.size(), 1u) << stg.name();
  }
}

TEST(Examples, VmeReadHasTwentyFourMarkings) {
  // The classic VME read-cycle STG: 24 reachable markings.
  pn::ReachabilityGraph g = pn::explore(examples::vme_read().net());
  EXPECT_TRUE(g.complete);
  EXPECT_GE(g.size(), 12u);
  EXPECT_LE(g.size(), 40u);
}

}  // namespace
}  // namespace stgcheck::stg
