// The n-ary relational product: and_exists_multi({f1..fk}, cube) must
// equal the fold of binary and_exists / exists on random expressions, for
// every operand count, cube shape and polarity mix -- and the kernel
// invariants must hold after every call (the multi recursion allocates
// through the same mk/unique-table path as the binary one, so a slip
// shows up as a canonical-form violation).
#include <gtest/gtest.h>

#include <vector>

#include "bdd/bdd.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace stgcheck::bdd {
namespace {

constexpr std::size_t kVars = 9;

/// A random expression over the first kVars variables.
Bdd random_expr(Manager& m, Rng& rng, int depth) {
  if (depth == 0 || rng.below(5) == 0) {
    const Var v = static_cast<Var>(rng.below(kVars));
    return rng.flip() ? m.var(v) : m.nvar(v);
  }
  const Bdd lhs = random_expr(m, rng, depth - 1);
  const Bdd rhs = random_expr(m, rng, depth - 1);
  switch (rng.below(3)) {
    case 0: return lhs & rhs;
    case 1: return lhs | rhs;
    default: return lhs ^ rhs;
  }
}

/// A random positive cube over a random variable subset (possibly empty).
Bdd random_cube(Manager& m, Rng& rng) {
  std::vector<Var> vars;
  for (Var v = 0; v < kVars; ++v) {
    if (rng.flip()) vars.push_back(v);
  }
  return m.positive_cube(vars);
}

class MultiAndExists : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Manager m;
  Rng rng{GetParam()};

  void SetUp() override {
    for (std::size_t v = 0; v < kVars; ++v) m.new_var("v" + std::to_string(v));
  }
};

TEST_P(MultiAndExists, EqualsBinaryFoldOnRandomExpressions) {
  for (int round = 0; round < 24; ++round) {
    const std::size_t k = 1 + rng.below(6);
    std::vector<Bdd> conjuncts;
    for (std::size_t i = 0; i < k; ++i) {
      conjuncts.push_back(random_expr(m, rng, 3));
    }
    const Bdd cube = random_cube(m, rng);

    const Bdd multi = m.and_exists_multi(conjuncts, cube);
    m.check_invariants();

    // Oracle 1: conjoin everything, quantify at the end.
    Bdd conj = m.bdd_true();
    for (const Bdd& f : conjuncts) conj &= f;
    EXPECT_EQ(multi, m.exists(conj, cube)) << "round " << round;

    // Oracle 2: the fold of binary and_exists -- conjoin all but the last
    // operand, then one binary relational product.
    Bdd prefix = m.bdd_true();
    for (std::size_t i = 0; i + 1 < k; ++i) prefix &= conjuncts[i];
    EXPECT_EQ(multi, m.and_exists(prefix, conjuncts.back(), cube))
        << "round " << round;
    m.check_invariants();
  }
}

TEST_P(MultiAndExists, DegenerateOperandLists) {
  const Bdd f = random_expr(m, rng, 3);
  const Bdd g = random_expr(m, rng, 3);
  const Bdd cube = random_cube(m, rng);

  // Empty list: the empty conjunction is true, and exists of true is true.
  EXPECT_EQ(m.and_exists_multi({}, cube), m.bdd_true());
  // Singleton delegates to plain quantification.
  EXPECT_EQ(m.and_exists_multi({f}, cube), m.exists(f, cube));
  // Pairs share the binary kernel.
  EXPECT_EQ(m.and_exists_multi({f, g}, cube), m.and_exists(f, g, cube));
  // Duplicates collapse; a complementary pair annihilates; false absorbs.
  EXPECT_EQ(m.and_exists_multi({f, f, g}, cube), m.and_exists(f, g, cube));
  EXPECT_EQ(m.and_exists_multi({f, !f, g}, cube), m.bdd_false());
  EXPECT_EQ(m.and_exists_multi({f, m.bdd_false(), g}, cube), m.bdd_false());
  // True units vanish.
  EXPECT_EQ(m.and_exists_multi({f, m.bdd_true(), g}, cube),
            m.and_exists(f, g, cube));
  // A true cube means no quantification: the plain conjunction.
  EXPECT_EQ(m.and_exists_multi({f, g, f ^ g}, m.bdd_true()),
            f & g & (f ^ g));
  m.check_invariants();
}

TEST_P(MultiAndExists, MixedManagerOperandThrows) {
  Manager other;
  other.new_var("w");
  const Bdd foreign = other.var(0);
  EXPECT_THROW(m.and_exists_multi({m.var(0), foreign}, m.bdd_true()),
               ModelError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiAndExists,
                         ::testing::Values(0xA11CEu, 0xB0Bu, 0xC0FFEEu,
                                           0xD15EA5Eu));

}  // namespace
}  // namespace stgcheck::bdd
