// The partitioned relation backend: clustering respects the node cap, the
// quantification schedule quantifies each variable at the earliest legal
// cluster (and nowhere else), and the partitioned image agrees with the
// monolithic relation and the cofactor pipeline -- including on random
// STGs far from the hand-built generator families.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/image_engine.hpp"
#include "core/traversal.hpp"
#include "random_stg.hpp"
#include "stg/generators.hpp"
#include "util/rng.hpp"

namespace stgcheck::core {
namespace {

using bdd::Bdd;
using bdd::Var;

std::unique_ptr<SymbolicStg> primed_encoding(const stg::Stg& s) {
  return std::make_unique<SymbolicStg>(s, Ordering::kInterleaved, 1 << 14,
                                       /*with_primed_vars=*/true);
}

/// The unprimed state variables transition `t` touches: preset/postset
/// places plus the fired signal -- recomputed from the net, independently
/// of the relation builder.
std::vector<Var> touched_vars(const SymbolicStg& sym, pn::TransitionId t) {
  std::set<Var> vars;
  const pn::PetriNet& net = sym.stg().net();
  for (pn::PlaceId p : net.preset(t)) vars.insert(sym.place_var(p));
  for (pn::PlaceId p : net.postset(t)) vars.insert(sym.place_var(p));
  const stg::TransitionLabel& label = sym.stg().label(t);
  if (!label.is_dummy()) vars.insert(sym.signal_var(label.signal));
  return {vars.begin(), vars.end()};
}

// ---------------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------------

TEST(Clustering, NodeCapRespected) {
  const stg::Stg s = stg::master_read(5);
  auto sym = primed_encoding(s);
  for (const std::size_t cap : {std::size_t{1}, std::size_t{8},
                                std::size_t{64}, std::size_t{100000}}) {
    EngineOptions options;
    options.cluster_node_cap = cap;
    PartitionedRelationEngine engine(*sym, options);
    for (std::size_t c = 0; c < engine.cluster_count(); ++c) {
      // A cap cannot split a single transition; only multi-transition
      // clusters must obey it.
      if (engine.cluster_transitions(c).size() > 1) {
        EXPECT_LE(engine.cluster_nodes(c), cap) << "cap " << cap;
      }
    }
  }
}

TEST(Clustering, TinyCapYieldsSingletons) {
  const stg::Stg s = stg::muller_pipeline(4);
  auto sym = primed_encoding(s);
  EngineOptions options;
  options.cluster_node_cap = 1;  // nothing can merge
  PartitionedRelationEngine engine(*sym, options);
  EXPECT_EQ(engine.cluster_count(), s.net().transition_count());
}

TEST(Clustering, HugeCapMergesOverlappingSupports) {
  // On a pipeline every adjacent transition pair shares a place, so a
  // boundless cap must produce fewer clusters than transitions.
  const stg::Stg s = stg::muller_pipeline(6);
  auto sym = primed_encoding(s);
  EngineOptions options;
  options.cluster_node_cap = 1u << 20;
  PartitionedRelationEngine engine(*sym, options);
  EXPECT_LT(engine.cluster_count(), s.net().transition_count());
}

TEST(Clustering, EveryTransitionInExactlyOneCluster) {
  const stg::Stg s = stg::mutex_arbiter(4);
  auto sym = primed_encoding(s);
  PartitionedRelationEngine engine(*sym);
  std::vector<int> seen(s.net().transition_count(), 0);
  for (std::size_t c = 0; c < engine.cluster_count(); ++c) {
    for (pn::TransitionId t : engine.cluster_transitions(c)) ++seen[t];
  }
  for (pn::TransitionId t = 0; t < seen.size(); ++t) {
    EXPECT_EQ(seen[t], 1) << s.format_label(t);
  }
}

// ---------------------------------------------------------------------------
// Quantification schedule
// ---------------------------------------------------------------------------

TEST(QuantificationSchedule, EachVariableAtTheEarliestLegalCluster) {
  for (const stg::Stg& s : {stg::muller_pipeline(5), stg::master_read(3),
                            stg::mutex_arbiter(3), stg::select_chain(3)}) {
    auto sym = primed_encoding(s);
    PartitionedRelationEngine engine(*sym);
    const std::vector<std::vector<Var>> schedule =
        engine.quantification_schedule();
    ASSERT_EQ(schedule.size(), engine.cluster_count());
    for (std::size_t c = 0; c < engine.cluster_count(); ++c) {
      // The legal quantification set of a cluster is the union of its
      // members' touched variables: quantifying any of them in an earlier
      // cluster would lose that cluster's frame; quantifying any other
      // variable here would lose the state set's own constraint.
      std::set<Var> legal;
      for (pn::TransitionId t : engine.cluster_transitions(c)) {
        for (Var v : touched_vars(*sym, t)) legal.insert(v);
      }
      const std::set<Var> scheduled(schedule[c].begin(), schedule[c].end());
      EXPECT_EQ(scheduled, legal) << s.name() << " cluster " << c;
    }
  }
}

TEST(QuantificationSchedule, MonolithicQuantifiesEverythingAtOnce) {
  // The contrast the partitioned backend exists for: the monolithic arm's
  // single step quantifies every state variable; a capped partitioned
  // cluster quantifies only its own support.
  const stg::Stg s = stg::select_chain(4);
  auto sym = primed_encoding(s);
  EngineOptions options;
  options.cluster_node_cap = 32;  // keep clusters local
  PartitionedRelationEngine engine(*sym, options);
  const std::size_t state_vars =
      sym->place_var_list().size() + sym->signal_var_list().size();
  ASSERT_GT(engine.cluster_count(), 1u);
  for (const std::vector<Var>& cluster_vars : engine.quantification_schedule()) {
    EXPECT_LT(cluster_vars.size(), state_vars);
  }
}

// ---------------------------------------------------------------------------
// Random STGs: partitioned == monolithic == cofactor
// ---------------------------------------------------------------------------

TEST(RandomStgs, PartitionedMatchesMonolithicAndCofactor) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 12; ++trial) {
    const stg::Stg s = testutil::random_stg(rng);
    auto sym = primed_encoding(s);
    CofactorEngine cofactor(*sym);
    MonolithicRelationEngine monolithic(*sym);
    EngineOptions options;
    options.cluster_node_cap = 1 + rng.below(500);
    PartitionedRelationEngine partitioned(*sym, options);

    // Random rings may be inconsistent STGs; images must agree regardless.
    TraversalOptions topts;
    topts.abort_on_violation = false;
    const TraversalResult ref = traverse(cofactor, topts);

    EXPECT_EQ(partitioned.image(ref.reached), monolithic.image(ref.reached))
        << "trial " << trial;
    EXPECT_EQ(partitioned.image(ref.reached), cofactor.image(ref.reached))
        << "trial " << trial;
    EXPECT_EQ(partitioned.preimage(ref.reached),
              monolithic.preimage(ref.reached))
        << "trial " << trial;
    for (pn::TransitionId t = 0; t < s.net().transition_count(); ++t) {
      EXPECT_EQ(partitioned.image_via(ref.reached, t),
                cofactor.image_via(ref.reached, t))
          << "trial " << trial << " " << s.format_label(t);
      EXPECT_EQ(partitioned.preimage_via(ref.reached, t),
                cofactor.preimage_via(ref.reached, t))
          << "trial " << trial << " " << s.format_label(t);
    }

    const TraversalResult mono_r = traverse(monolithic, topts);
    const TraversalResult part_r = traverse(partitioned, topts);
    EXPECT_EQ(mono_r.reached, ref.reached) << "trial " << trial;
    EXPECT_EQ(part_r.reached, ref.reached) << "trial " << trial;

    // Conjunct-scheduled backends must land on the same BDDs.
    for (EngineKind kind : {EngineKind::kMonolithicRelation,
                            EngineKind::kPartitionedRelation}) {
      EngineOptions scheduled = options;
      scheduled.schedule = ScheduleKind::kSupportOverlap;
      const std::unique_ptr<ImageEngine> engine =
          make_engine(kind, *sym, scheduled);
      EXPECT_EQ(engine->image(ref.reached), cofactor.image(ref.reached))
          << "trial " << trial << " scheduled " << engine->name();
      EXPECT_EQ(engine->preimage(ref.reached), cofactor.preimage(ref.reached))
          << "trial " << trial << " scheduled " << engine->name();
      EXPECT_EQ(traverse(*engine, topts).reached, ref.reached)
          << "trial " << trial << " scheduled " << engine->name();
    }
  }
}

TEST(EngineFactory, BuildsEveryKind) {
  const stg::Stg s = stg::examples::vme_read();
  auto sym = primed_encoding(s);
  for (EngineKind kind :
       {EngineKind::kCofactor, EngineKind::kMonolithicRelation,
        EngineKind::kPartitionedRelation}) {
    const std::unique_ptr<ImageEngine> engine = make_engine(kind, *sym);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_STREQ(engine->name(), to_string(kind));
    EXPECT_GT(engine->unit_count(), 0u);
  }
}

}  // namespace
}  // namespace stgcheck::core
