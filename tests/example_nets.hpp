// The shared roster of example nets the cross-validation suites sweep:
// generator families at two sizes plus every hand-built example STG.
// Kept in one place so engine-parametrized suites (explicit-vs-symbolic
// cross-validation, scheduled-vs-unscheduled backends) agree on what "all
// example nets" means.
#pragma once

#include "stg/generators.hpp"

namespace stgcheck::testutil {

inline stg::Stg example_net(int index) {
  switch (index) {
    case 0: return stg::muller_pipeline(2);
    case 1: return stg::muller_pipeline(5);
    case 2: return stg::master_read(2);
    case 3: return stg::master_read(4);
    case 4: return stg::mutex_arbiter(2);
    case 5: return stg::mutex_arbiter(4);
    case 6: return stg::select_chain(2);
    case 7: return stg::select_chain(4);
    case 8: return stg::examples::fig3_d1();
    case 9: return stg::examples::fig3_d2();
    case 10: return stg::examples::fake_asymmetric(false);
    case 11: return stg::examples::fake_asymmetric(true);
    case 12: return stg::examples::pulse_cycle();
    case 13: return stg::examples::output_cycle();
    case 14: return stg::examples::output_cycle_resolved();
    case 15: return stg::examples::input_pulse_counter();
    case 16: return stg::examples::vme_read();
    case 17: return stg::examples::noncommutative_diamond();
    default: return stg::examples::nondeterministic_choice();
  }
}

inline constexpr int kExampleNetCount = 19;

}  // namespace stgcheck::testutil
