// The parallel kernel against its own sequential core. Canonicity makes
// this comparison exact: within one manager two Bdd handles are equal iff
// they denote the same function, so every suite computes a reference
// result at thread_count() == 1, flushes the computed caches with
// collect_garbage() (so the parallel run cannot just replay cached
// answers), raises the thread count and recomputes. Any divergence --
// a torn cache entry, a duplicate unique-table insertion, a mis-joined
// fork -- surfaces as a handle mismatch or a check_invariants() failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace stgcheck::bdd {
namespace {

// Deep enough that the top levels sit well above the sequential cutoff,
// so the fork paths genuinely run when a pool is attached.
constexpr std::size_t kVars = 24;

/// A random expression tree of &, |, ^ over literals of kVars variables.
Bdd random_function(Manager& m, Rng& rng, int depth) {
  if (depth == 0 || rng.below(6) == 0) {
    const Var v = static_cast<Var>(rng.below(kVars));
    return rng.flip() ? m.var(v) : !m.var(v);
  }
  const Bdd lhs = random_function(m, rng, depth - 1);
  const Bdd rhs = random_function(m, rng, depth - 1);
  switch (rng.below(3)) {
    case 0: return lhs & rhs;
    case 1: return lhs | rhs;
    default: return lhs ^ rhs;
  }
}

struct WideSpace {
  WideSpace() {
    for (std::size_t i = 0; i < kVars; ++i) m.new_var("x" + std::to_string(i));
  }
  Manager m;
};

TEST(ParallelKernel, ApplyAndIteMatchSequentialBitForBit) {
  WideSpace s;
  Rng rng(0xA11E1);
  for (int trial = 0; trial < 8; ++trial) {
    s.m.set_thread_count(1);
    const Bdd f = random_function(s.m, rng, 6);
    const Bdd g = random_function(s.m, rng, 6);
    const Bdd h = random_function(s.m, rng, 6);
    const Bdd and_seq = f & g;
    const Bdd or_seq = f | g;
    const Bdd xor_seq = f ^ g;
    const Bdd ite_seq = s.m.ite(f, g, h);
    s.m.collect_garbage();  // drop cached results; force real recomputation
    s.m.set_thread_count(4);
    EXPECT_EQ(f & g, and_seq) << "trial " << trial;
    EXPECT_EQ(f | g, or_seq) << "trial " << trial;
    EXPECT_EQ(f ^ g, xor_seq) << "trial " << trial;
    EXPECT_EQ(s.m.ite(f, g, h), ite_seq) << "trial " << trial;
    s.m.check_invariants();
  }
}

TEST(ParallelKernel, QuantificationMatchesSequentialBitForBit) {
  WideSpace s;
  Rng rng(0xC0FE);
  std::vector<Var> evens;
  for (std::size_t i = 0; i < kVars; i += 2) {
    evens.push_back(static_cast<Var>(i));
  }
  const Bdd cube = s.m.positive_cube(evens);
  for (int trial = 0; trial < 8; ++trial) {
    s.m.set_thread_count(1);
    const Bdd f = random_function(s.m, rng, 6);
    const Bdd g = random_function(s.m, rng, 6);
    const Bdd exists_seq = s.m.exists(f, cube);
    const Bdd forall_seq = s.m.forall(f, cube);
    const Bdd andex_seq = s.m.and_exists(f, g, cube);
    s.m.collect_garbage();
    s.m.set_thread_count(8);
    EXPECT_EQ(s.m.exists(f, cube), exists_seq) << "trial " << trial;
    EXPECT_EQ(s.m.forall(f, cube), forall_seq) << "trial " << trial;
    EXPECT_EQ(s.m.and_exists(f, g, cube), andex_seq) << "trial " << trial;
    s.m.check_invariants();
  }
}

TEST(ParallelKernel, NaryProductMatchesSequentialBitForBit) {
  WideSpace s;
  Rng rng(0xFA2);
  std::vector<Var> half;
  for (std::size_t i = 0; i < kVars / 2; ++i) {
    half.push_back(static_cast<Var>(i));
  }
  const Bdd cube = s.m.positive_cube(half);
  for (int trial = 0; trial < 6; ++trial) {
    s.m.set_thread_count(1);
    std::vector<Bdd> conjuncts;
    for (int c = 0; c < 5; ++c) {
      conjuncts.push_back(random_function(s.m, rng, 5));
    }
    const Bdd seq = s.m.and_exists_multi(conjuncts, cube);
    s.m.collect_garbage();
    s.m.set_thread_count(4);
    EXPECT_EQ(s.m.and_exists_multi(conjuncts, cube), seq) << "trial " << trial;
    s.m.check_invariants();
  }
}

/// Twin-pair manager for the relational ops: state var i at level 2i,
/// its next-state twin right below it.
struct TwinSpace {
  explicit TwinSpace(std::size_t pairs) : n(pairs) {
    for (std::size_t i = 0; i < pairs; ++i) {
      m.new_var("x" + std::to_string(i));
      m.new_var("x" + std::to_string(i) + "'");
    }
  }
  Var cur(std::size_t i) const { return static_cast<Var>(2 * i); }
  Var nxt(std::size_t i) const { return static_cast<Var>(2 * i + 1); }
  Bdd v(std::size_t i) { return m.var(cur(i)); }
  Bdd vn(std::size_t i) { return m.var(nxt(i)); }

  /// Token-ring rules: rule i moves the token from slot i to slot i + 1.
  std::vector<ReachRelation> ring_rules() {
    std::vector<ReachRelation> rules;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i + 1) % n;
      ReachRelation r;
      r.rel = v(i) & !vn(i) & !v(j) & vn(j);
      r.support = m.positive_cube({cur(i), cur(j)});
      rules.push_back(r);
    }
    return rules;
  }

  /// One token in slot 0, doubled so the reached set is not a single cube.
  Bdd initial() {
    Bdd init = m.bdd_true();
    for (std::size_t i = 0; i < n; ++i) init &= i == 0 ? v(i) : !v(i);
    Bdd second = m.bdd_true();
    for (std::size_t i = 0; i < n; ++i) {
      second &= i == n / 2 ? v(i) : !v(i);
    }
    return init | second;
  }

  std::size_t n;
  Manager m;
};

TEST(ParallelKernel, RelNextAndReachMatchSequentialBitForBit) {
  TwinSpace ts(12);  // 24 variables: deep enough to fork
  const std::vector<ReachRelation> rules = ts.ring_rules();
  const Bdd init = ts.initial();

  Bdd rel = ts.m.bdd_false();
  std::vector<Var> all_cur;
  for (std::size_t i = 0; i < ts.n; ++i) all_cur.push_back(ts.cur(i));
  for (const ReachRelation& r : rules) rel |= r.rel;
  const Bdd support = ts.m.positive_cube(all_cur);

  ts.m.set_thread_count(1);
  const Bdd next_seq = ts.m.rel_next(init, rel, support);
  const Bdd reach_seq = ts.m.reach(init, rules);
  ts.m.collect_garbage();

  for (const std::size_t threads : {2, 4, 8}) {
    ts.m.set_thread_count(threads);
    EXPECT_EQ(ts.m.rel_next(init, rel, support), next_seq) << threads;
    EXPECT_EQ(ts.m.reach(init, rules), reach_seq) << threads;
    ts.m.check_invariants();
    ts.m.collect_garbage();
  }
}

TEST(ParallelKernel, ShallowOperandsFallThroughToSequentialCore) {
  // Below the fork cutoff the wrappers must skip the pool entirely and
  // still agree with the one-thread answer.
  Manager m;
  for (int i = 0; i < 4; ++i) m.new_var("y" + std::to_string(i));
  const Bdd f = (m.var(0) & m.var(1)) | (m.var(2) ^ m.var(3));
  const Bdd g = m.ite(m.var(1), m.var(3), !m.var(0));
  const Bdd seq = f & g;
  m.collect_garbage();
  m.set_thread_count(8);
  EXPECT_EQ(f & g, seq);
  EXPECT_EQ(f | g, !((!f) & (!g)));
  m.check_invariants();
}

TEST(ParallelKernel, ThreadCountClampsToKernelLimits) {
  Manager m;
  EXPECT_EQ(m.thread_count(), 1u);
  m.set_thread_count(4);
  EXPECT_EQ(m.thread_count(), 4u);
  m.set_thread_count(0);
  EXPECT_EQ(m.thread_count(), 1u);
  m.set_thread_count(Manager::kMaxThreads + 17);
  EXPECT_EQ(m.thread_count(), Manager::kMaxThreads);
  m.set_thread_count(1);
  EXPECT_EQ(m.thread_count(), 1u);
}

TEST(ParallelKernel, StatsStayTruthfulAcrossParallelOps) {
  WideSpace s;
  Rng rng(0x57A7);
  s.m.set_thread_count(4);
  Bdd acc = s.m.bdd_false();
  for (int trial = 0; trial < 6; ++trial) {
    acc |= random_function(s.m, rng, 6);
  }
  const ManagerStats stats = s.m.stats();
  // The merged per-worker counters must stay internally consistent no
  // matter which worker did the work.
  EXPECT_LE(stats.cache_hits, stats.cache_lookups);
  EXPECT_GT(stats.cache_lookups, 0u);
  EXPECT_LE(stats.live_count, stats.node_count);
  EXPECT_GE(stats.peak_live, stats.live_count);
  EXPECT_GE(s.m.live_nodes(), 1u);
  s.m.check_invariants();
  s.m.set_thread_count(1);
  s.m.collect_garbage();
  EXPECT_EQ(s.m.stats().dead_count, 0u);
  s.m.check_invariants();
}

}  // namespace
}  // namespace stgcheck::bdd
