// The Chrome trace_event exporter (util/trace.hpp): span lifetimes on a
// ManualClock, nesting containment, monotone timestamps, numeric args,
// the null-recorder no-op path, and the JSON document shape
// chrome://tracing expects (parsed back through util/json).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace stgcheck {
namespace {

TEST(TraceSpan, NullRecorderIsNoOp) {
  TraceSpan span(nullptr, "work", "test");
  span.arg("n", 1);
  // Nothing to assert beyond "does not crash": every member is a no-op.
}

TEST(TraceRecorder, ManualClockStampsSpans) {
  ManualClock clock;
  TraceRecorder rec(&clock);
  clock.set(1.0);
  {
    TraceSpan span(&rec, "outer", "test");
    clock.advance(0.5);
  }
  ASSERT_EQ(rec.event_count(), 1u);
  const json::Value doc = json::Value::parse(rec.dump());
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").as_string(), "outer");
  EXPECT_EQ(events[0].at("cat").as_string(), "test");
  EXPECT_EQ(events[0].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("ts").as_number(), 1.0e6);   // microseconds
  EXPECT_DOUBLE_EQ(events[0].at("dur").as_number(), 0.5e6);
  EXPECT_EQ(events[0].at("pid").as_number(), 0.0);
  EXPECT_EQ(events[0].at("tid").as_number(), 0.0);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
}

TEST(TraceRecorder, NestedSpansRecordInnerFirstAndContained) {
  ManualClock clock;
  TraceRecorder rec(&clock);
  {
    TraceSpan outer(&rec, "outer", "test");
    clock.advance(1.0);
    {
      TraceSpan inner(&rec, "inner", "test");
      clock.advance(2.0);
    }
    clock.advance(1.0);
  }
  const json::Value doc = rec.to_json();
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inner-first (RAII), so the inner event records first.
  EXPECT_EQ(events[0].at("name").as_string(), "inner");
  EXPECT_EQ(events[1].at("name").as_string(), "outer");
  const double inner_ts = events[0].at("ts").as_number();
  const double inner_end = inner_ts + events[0].at("dur").as_number();
  const double outer_ts = events[1].at("ts").as_number();
  const double outer_end = outer_ts + events[1].at("dur").as_number();
  EXPECT_GE(inner_ts, outer_ts);   // containment
  EXPECT_LE(inner_end, outer_end);
}

TEST(TraceRecorder, TimestampsMonotoneAcrossSequentialSpans) {
  ManualClock clock;
  TraceRecorder rec(&clock);
  for (int i = 0; i < 4; ++i) {
    TraceSpan span(&rec, "step", "test");
    span.arg("i", i);
    clock.advance(1.0);
  }
  const json::Value doc = rec.to_json();
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 4u);
  double prev_end = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const double ts = events[i].at("ts").as_number();
    const double end = ts + events[i].at("dur").as_number();
    EXPECT_GE(ts, prev_end);  // sequential spans never overlap
    prev_end = end;
    EXPECT_DOUBLE_EQ(events[i].at("args").at("i").as_number(),
                     static_cast<double>(i));
  }
}

TEST(TraceRecorder, ArgsOmittedWhenEmpty) {
  ManualClock clock;
  TraceRecorder rec(&clock);
  { TraceSpan span(&rec, "bare", "test"); }
  const json::Value doc = rec.to_json();
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("args"), nullptr);
}

TEST(TraceRecorder, NoDroppedEventsMemberWhenUnderCap) {
  ManualClock clock;
  TraceRecorder rec(&clock);
  { TraceSpan span(&rec, "one", "test"); }
  EXPECT_EQ(rec.dropped_count(), 0u);
  const json::Value doc = rec.to_json();
  EXPECT_EQ(doc.find("droppedEvents"), nullptr);
}

TEST(TraceRecorder, OwnClockWhenNull) {
  TraceRecorder rec;  // own SteadyClock starting now
  { TraceSpan span(&rec, "steady", "test"); }
  const json::Value doc = rec.to_json();
  const json::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].at("ts").as_number(), 0.0);
  EXPECT_GE(events[0].at("dur").as_number(), 0.0);
}

}  // namespace
}  // namespace stgcheck
