// Construction, handles, cubes, reference counting and garbage collection.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "util/error.hpp"

namespace stgcheck::bdd {
namespace {

TEST(BddBasic, TerminalsAreDistinctAndFixed) {
  Manager m;
  EXPECT_TRUE(m.bdd_true().is_true());
  EXPECT_TRUE(m.bdd_false().is_false());
  EXPECT_NE(m.bdd_true(), m.bdd_false());
  EXPECT_TRUE(m.bdd_true().is_terminal());
}

TEST(BddBasic, VariablesAreCanonical) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, m.var(0));
  EXPECT_EQ(b, m.var(1));
  EXPECT_EQ(m.var_name(0), "a");
  EXPECT_EQ(m.var_name(1), "b");
}

TEST(BddBasic, DefaultVarNames) {
  Manager m;
  m.new_var();
  EXPECT_EQ(m.var_name(0), "x0");
}

TEST(BddBasic, UnknownVariableThrows) {
  Manager m;
  EXPECT_THROW(m.var(0), ModelError);
  m.new_var("a");
  EXPECT_THROW(m.var(1), ModelError);
  EXPECT_THROW(m.nvar(7), ModelError);
}

TEST(BddBasic, NegativeLiteral) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd na = m.nvar(0);
  EXPECT_EQ(na, !a);
  EXPECT_EQ(!na, a);
}

TEST(BddBasic, ReductionRules) {
  Manager m;
  Bdd a = m.new_var("a");
  // x ? f : f == f
  EXPECT_EQ(m.ite(a, m.bdd_true(), m.bdd_true()), m.bdd_true());
  // ite(f, 1, 0) == f
  EXPECT_EQ(m.ite(a, m.bdd_true(), m.bdd_false()), a);
}

TEST(BddBasic, SharingIsCanonical) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd f1 = (a & b) | (!a & b);
  EXPECT_EQ(f1, b);  // reduces to b exactly
  Bdd f2 = a ^ b;
  Bdd f3 = (a & !b) | (!a & b);
  EXPECT_EQ(f2, f3);
}

TEST(BddBasic, CubeOfLiterals) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd c = m.new_var("c");
  Bdd cube = m.cube({{0, true}, {2, false}});
  EXPECT_EQ(cube, a & !c);
  EXPECT_EQ(m.cube({}), m.bdd_true());
  (void)b;
}

TEST(BddBasic, ContradictoryCubeIsFalse) {
  Manager m;
  m.new_var("a");
  EXPECT_TRUE(m.cube({{0, true}, {0, false}}).is_false());
}

TEST(BddBasic, DuplicateConsistentLiteralIsFine) {
  Manager m;
  Bdd a = m.new_var("a");
  EXPECT_EQ(m.cube({{0, true}, {0, true}}), a);
}

TEST(BddBasic, PositiveCube) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  EXPECT_EQ(m.positive_cube({0, 1}), a & b);
}

TEST(BddBasic, CubeLiteralsRoundTrip) {
  Manager m;
  m.new_var("a");
  m.new_var("b");
  m.new_var("c");
  CubeLiterals lits{{0, true}, {1, false}, {2, true}};
  Bdd cube = m.cube(lits);
  CubeLiterals back = m.cube_literals(cube);
  EXPECT_EQ(back, lits);
}

TEST(BddBasic, CubeLiteralsRejectsNonCube) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  EXPECT_THROW(m.cube_literals(a | b), ModelError);
  EXPECT_THROW(m.cube_literals(m.bdd_false()), ModelError);
}

TEST(BddBasic, CubeLiteralsOfTrueIsEmpty) {
  Manager m;
  EXPECT_TRUE(m.cube_literals(m.bdd_true()).empty());
}

TEST(BddBasic, HandleCopySemantics) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd copy = a;
  EXPECT_EQ(copy, a);
  Bdd moved = std::move(copy);
  EXPECT_EQ(moved, a);
  EXPECT_FALSE(copy.valid());  // NOLINT(bugprone-use-after-move): testing move semantics
}

TEST(BddBasic, SelfAssignment) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd& ref = a;
  a = ref;
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, m.var(0));
}

TEST(BddBasic, GarbageCollectionReclaimsDeadNodes) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd c = m.new_var("c");
  const std::size_t base = m.live_nodes();
  {
    Bdd tmp = (a & b) | (b & c) | (a ^ c);
    EXPECT_GT(m.live_nodes(), base);
  }
  m.collect_garbage();
  EXPECT_EQ(m.live_nodes(), base);
}

TEST(BddBasic, GcPreservesLiveFunctions) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd f = a ^ b;
  m.collect_garbage();
  // f must still be usable and canonical after collection.
  EXPECT_EQ(f, a ^ b);
  EXPECT_EQ(f & a, a & !b);
}

TEST(BddBasic, DeadNodesAreResurrectedBySharing) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  { Bdd dead = a & b; }
  // The node for a&b is dead but still in the table; recreating it must not
  // corrupt counts.
  Bdd again = a & b;
  m.collect_garbage();
  EXPECT_EQ(again, a & b);
}

TEST(BddBasic, StatsReportVariablesAndNodes) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd f = a & b;
  ManagerStats s = m.stats();
  EXPECT_EQ(s.var_count, 2u);
  EXPECT_GE(s.live_count, 3u);  // a, b, a&b
  EXPECT_GE(s.peak_live, s.live_count);
  (void)f;
}

TEST(BddBasic, ResetPeakStatsRearmsToCurrentLive) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd c = m.new_var("c");
  {
    Bdd big = (a & b) | (b & c) | (a ^ c);  // transient peak
  }
  m.collect_garbage();
  const std::size_t live = m.live_nodes();
  ASSERT_GT(m.peak_live_nodes(), live);  // the peak outlived its nodes

  // A batch-style re-arm: both gauges drop to the current live count, so
  // the next check's peaks are its own, not an inherited high-water mark.
  m.reset_peak_stats();
  EXPECT_EQ(m.peak_live_nodes(), live);
  EXPECT_EQ(m.window_peak_live(), live);

  // And they rise again from there.
  Bdd f = (a & b) | (b & c);
  EXPECT_GE(m.peak_live_nodes(), m.live_nodes());
  EXPECT_GT(m.peak_live_nodes(), live);
  (void)f;
}

TEST(BddBasic, NodeCountOfSharedGraph) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  // With complement edges XOR needs 2 nodes: one a-node whose branches
  // reach the single b-node with opposite polarities.
  Bdd f = a ^ b;
  EXPECT_EQ(m.count_nodes(f), 2u);
  EXPECT_EQ(m.count_nodes(f), m.count_nodes(!f));  // shared graph
  EXPECT_EQ(m.count_nodes(m.bdd_true()), 0u);
  // Multi-root count shares: {f, a} adds only the single a node.
  EXPECT_EQ(m.count_nodes({f, a}), 3u);
}

TEST(BddBasic, EvalWalksTheGraph) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  Bdd f = a & !b;
  EXPECT_TRUE(m.eval(f, {true, false}));
  EXPECT_FALSE(m.eval(f, {true, true}));
  EXPECT_FALSE(m.eval(f, {false, false}));
}

TEST(BddBasic, ToDotContainsNodes) {
  Manager m;
  Bdd a = m.new_var("sig_a");
  Bdd b = m.new_var("sig_b");
  std::string dot = m.to_dot({{"f", a & b}});
  EXPECT_NE(dot.find("sig_a"), std::string::npos);
  EXPECT_NE(dot.find("sig_b"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(BddBasic, ToStringSmallFormulas) {
  Manager m;
  Bdd a = m.new_var("a");
  Bdd b = m.new_var("b");
  EXPECT_EQ(m.to_string(m.bdd_false()), "0");
  EXPECT_EQ(m.to_string(m.bdd_true()), "1");
  EXPECT_EQ(m.to_string(a & b), "a&b");
  EXPECT_EQ(m.to_string(!a), "a'");
}

}  // namespace
}  // namespace stgcheck::bdd
