// Complex-gate derivation: covers must implement the next-state function
// of every non-input signal, verified by simulation against the explicit
// state graph.
#include <gtest/gtest.h>

#include <memory>

#include "core/traversal.hpp"
#include "logic/logic.hpp"
#include "sg/state_graph.hpp"
#include "stg/generators.hpp"

namespace stgcheck::logic {
namespace {

struct Derived {
  std::unique_ptr<core::SymbolicStg> sym;
  core::TraversalResult traversal;
  LogicResult logic;
};

Derived derive(const stg::Stg& s) {
  Derived d;
  d.sym = std::make_unique<core::SymbolicStg>(s);
  d.traversal = core::traverse(*d.sym);
  EXPECT_TRUE(d.traversal.ok()) << s.name();
  d.logic = derive_logic(*d.sym, d.traversal.reached);
  return d;
}

/// The specified next value of signal a in a state: 1 if a is excited to
/// rise or stably high.
bool next_value(const sg::StateGraph& g, std::size_t state, stg::SignalId a) {
  bool plus = false;
  bool minus = false;
  for (pn::TransitionId t : g.enabled_transitions(state)) {
    const stg::TransitionLabel& l = g.stg->label(t);
    if (l.is_dummy() || l.signal != a) continue;
    (l.dir == stg::Dir::kPlus ? plus : minus) = true;
  }
  if (plus) return true;
  if (minus) return false;
  return g.codes[state][a] == sg::kOne;
}

void check_by_simulation(const stg::Stg& s) {
  Derived d = derive(s);
  ASSERT_TRUE(d.logic.all_derivable) << s.name();
  sg::StateGraph g = sg::build_state_graph(s);
  ASSERT_TRUE(g.complete);
  for (const GateEquation& eq : d.logic.equations) {
    ASSERT_TRUE(eq.derivable);
    for (std::size_t state = 0; state < g.size(); ++state) {
      std::vector<bool> code(s.signal_count());
      for (stg::SignalId sig = 0; sig < s.signal_count(); ++sig) {
        ASSERT_NE(g.codes[state][sig], sg::kUnknown);
        code[sig] = g.codes[state][sig] == sg::kOne;
      }
      EXPECT_EQ(eval_equation(*d.sym, eq, code), next_value(g, state, eq.signal))
          << s.name() << " signal " << s.signal_name(eq.signal) << " state "
          << g.code_string(state);
    }
  }
}

TEST(Logic, MullerPipelineGates) { check_by_simulation(stg::muller_pipeline(3)); }

TEST(Logic, MasterReadGates) { check_by_simulation(stg::master_read(2)); }

TEST(Logic, SelectChainGates) { check_by_simulation(stg::select_chain(2)); }

TEST(Logic, ResolvedOutputCycleGates) {
  check_by_simulation(stg::examples::output_cycle_resolved());
}

TEST(Logic, MutexGatesWithArbitration) {
  // Persistency needs the arbitration waiver, but logic derivation only
  // needs CSC, which mutex satisfies.
  check_by_simulation(stg::examples::mutex2());
}

TEST(Logic, MullerStageIsCElement) {
  // A middle pipeline stage must derive the Muller C-element equation:
  // ci = ci-1 & ci+1' + ci & (ci-1 + ci+1') -- i.e. majority-like.
  Derived d = derive(stg::muller_pipeline(3));
  const stg::Stg& s = d.sym->stg();
  const GateEquation* c2 = nullptr;
  for (const GateEquation& eq : d.logic.equations) {
    if (s.signal_name(eq.signal) == "c2") c2 = &eq;
  }
  ASSERT_NE(c2, nullptr);
  // Check the C-element truth table on the triple (c1, c2, c3).
  const stg::SignalId c1 = s.find_signal("c1");
  const stg::SignalId c2s = s.find_signal("c2");
  const stg::SignalId c3 = s.find_signal("c3");
  const auto value = [&](bool v1, bool v2, bool v3) {
    std::vector<bool> code(s.signal_count(), false);
    code[c1] = v1;
    code[c2s] = v2;
    code[c3] = v3;
    return eval_equation(*d.sym, *c2, code);
  };
  EXPECT_TRUE(value(true, false, false));    // set: prev full, next empty
  EXPECT_FALSE(value(false, true, true));    // reset: prev empty, next full
  EXPECT_TRUE(value(true, true, false));     // hold high
  EXPECT_FALSE(value(false, false, true));   // hold low
}

TEST(Logic, CscViolationBlocksDerivation) {
  Derived d = derive(stg::examples::pulse_cycle());
  EXPECT_FALSE(d.logic.all_derivable);
  ASSERT_EQ(d.logic.equations.size(), 1u);  // only signal b is non-input
  EXPECT_FALSE(d.logic.equations[0].derivable);
  EXPECT_NE(d.logic.netlist().find("not derivable"), std::string::npos);
}

TEST(Logic, NetlistFormat) {
  Derived d = derive(stg::muller_pipeline(2));
  const std::string netlist = d.logic.netlist();
  EXPECT_NE(netlist.find("c1 = "), std::string::npos);
  EXPECT_NE(netlist.find("c2 = "), std::string::npos);
  for (const GateEquation& eq : d.logic.equations) {
    EXPECT_GT(eq.literal_count, 0u);
    EXPECT_FALSE(eq.cover.empty());
  }
}

TEST(Logic, CoversAreIrredundant) {
  Derived d = derive(stg::examples::mutex2());
  bdd::Manager& m = d.sym->manager();
  for (const GateEquation& eq : d.logic.equations) {
    ASSERT_TRUE(eq.derivable);
    const core::SignalRegions r =
        core::signal_regions(*d.sym, d.traversal.reached, eq.signal);
    const bdd::Bdd on = r.er_plus | r.qr_plus;
    for (std::size_t skip = 0; skip < eq.cover.size(); ++skip) {
      bdd::Bdd partial = m.bdd_false();
      for (std::size_t i = 0; i < eq.cover.size(); ++i) {
        if (i != skip) partial |= m.cube(eq.cover[i]);
      }
      EXPECT_FALSE(on.implies(partial))
          << "redundant cube in " << eq.text;
    }
  }
}

}  // namespace
}  // namespace stgcheck::logic
