// The implicit claim behind Table 1: symbolic traversal scales where
// explicit state enumeration explodes. For each family the state count
// doubles-and-more per size step; the explicit engine's time and memory
// grow with the number of states, the symbolic engine's with the BDD size.
//
// Output: one row per (family, n) with both times; the explicit engine is
// skipped (marked "-") once it exceeds the budget, which is exactly the
// regime the paper targets.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/traversal.hpp"
#include "sg/state_graph.hpp"
#include "stg/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcheck;

constexpr double kExplicitBudgetSeconds = 3.0;
constexpr std::size_t kExplicitStateCap = 3'000'000;

void run_family(const char* family,
                const std::function<stg::Stg(std::size_t)>& make,
                const std::vector<std::size_t>& sizes) {
  bool explicit_alive = true;
  for (std::size_t n : sizes) {
    stg::Stg s = make(n);

    Stopwatch sym_watch;
    core::SymbolicStg sym(s);
    core::TraversalResult symbolic = core::traverse(sym);
    const double sym_time = sym_watch.seconds();

    double exp_time = -1;
    std::size_t exp_states = 0;
    if (explicit_alive) {
      Stopwatch exp_watch;
      sg::StateGraphOptions options;
      options.state_cap = kExplicitStateCap;
      sg::StateGraph graph = sg::build_state_graph(s, options);
      exp_time = exp_watch.seconds();
      exp_states = graph.size();
      if (!graph.complete || exp_time > kExplicitBudgetSeconds) {
        explicit_alive = false;  // beyond this size, explicit is hopeless
        if (!graph.complete) exp_time = -1;
      }
    }

    std::printf("%-10s n=%-3zu states=%.4e  symbolic=%8.3fs  explicit=",
                family, n, symbolic.stats.states, sym_time);
    if (exp_time >= 0) {
      std::printf("%8.3fs (%zu states)", exp_time, exp_states);
      if (exp_time > sym_time && exp_time > 0.01) {
        std::printf("  [symbolic %0.1fx faster]", exp_time / sym_time);
      }
    } else {
      std::printf("       - (cap exceeded)");
    }
    std::puts("");
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::puts("=== Explicit enumeration vs symbolic traversal ===");
  run_family("muller", [](std::size_t n) { return stg::muller_pipeline(n); },
             {4, 8, 12, 16, 20, 24, 28, 32});
  run_family("mread", [](std::size_t n) { return stg::master_read(n); },
             {2, 4, 6, 8});
  run_family("mutex", [](std::size_t n) { return stg::mutex_arbiter(n); },
             {2, 4, 6, 8, 10, 12, 14, 16});
  return 0;
}
