// Sec. 6 of the paper: "we have found that BDDs may have an exponential
// size if appropriate heuristics for variable ordering are not used."
//
// This ablation quantifies that remark: the same traversal under four
// static orders. The structural interleaving keeps each place variable
// next to the variables it interacts with; separating places from signals
// (or shuffling everything) inflates the peak BDD by orders of magnitude.
#include <cstdio>

#include "core/traversal.hpp"
#include "stg/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcheck;

void run(const stg::Stg& s) {
  std::printf("--- %s (places=%zu signals=%zu) ---\n", s.name().c_str(),
              s.net().place_count(), s.signal_count());
  struct Arm {
    const char* name;
    core::Ordering ordering;
  };
  for (const Arm& arm : {Arm{"interleaved", core::Ordering::kInterleaved},
                         Arm{"clustered", core::Ordering::kClustered},
                         Arm{"declaration", core::Ordering::kDeclaration},
                         Arm{"signals-first", core::Ordering::kSignalsFirst},
                         Arm{"random", core::Ordering::kRandom}}) {
    Stopwatch watch;
    core::SymbolicStg sym(s, arm.ordering);
    core::TraversalOptions options;
    options.auto_sift = false;  // measure the raw static orders
    core::TraversalResult r = core::traverse(sym, options);
    std::printf("  %-14s peak=%8zu final=%8zu nodes  time=%7.3fs  (states=%.3e)\n",
                arm.name, r.stats.peak_reached_nodes, r.stats.final_reached_nodes,
                watch.seconds(), r.stats.states);
    std::fflush(stdout);
  }

  // Extension: dynamic reordering. Sifting after traversal shrinks the
  // final representation regardless of the initial order.
  core::SymbolicStg sym(s, core::Ordering::kRandom);
  core::TraversalResult r = core::traverse(sym);
  const std::size_t before = sym.manager().count_nodes(r.reached);
  Stopwatch sift_watch;
  sym.manager().sift();
  std::printf("  %-14s %8zu -> %6zu nodes for Reached  (sift time %.3fs)\n",
              "random+sift", before, sym.manager().count_nodes(r.reached),
              sift_watch.seconds());
}

}  // namespace

int main() {
  std::puts("=== Variable ordering ablation (Sec. 6 remark) ===");
  run(stg::muller_pipeline(12));
  run(stg::master_read(6));
  run(stg::mutex_arbiter(8));
  return 0;
}
