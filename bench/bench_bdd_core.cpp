// Substrate microbenchmarks: throughput of the BDD package on the kernels
// the traversal is made of (google-benchmark).
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "core/traversal.hpp"
#include "stg/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace stgcheck;
using bdd::Bdd;

/// Random SOP over `vars` variables with `cubes` cubes of ~`density` lits.
Bdd random_sop(bdd::Manager& m, Rng& rng, std::size_t vars, std::size_t cubes) {
  Bdd f = m.bdd_false();
  for (std::size_t c = 0; c < cubes; ++c) {
    Bdd term = m.bdd_true();
    for (bdd::Var v = 0; v < vars; ++v) {
      if (rng.below(3) == 0) term &= rng.flip() ? m.var(v) : !m.var(v);
    }
    f |= term;
  }
  return f;
}

void BM_BddConjunction(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  bdd::Manager m;
  for (std::size_t v = 0; v < vars; ++v) m.new_var();
  Rng rng(7);
  Bdd f = random_sop(m, rng, vars, 24);
  Bdd g = random_sop(m, rng, vars, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f & g);
  }
  state.counters["nodes"] = static_cast<double>(m.stats().live_count);
  state.counters["cache_hit_rate"] = m.stats().cache_hit_rate();
}
BENCHMARK(BM_BddConjunction)->Arg(16)->Arg(32)->Arg(64);

// Negation is an edge-flag flip in the complement-edge kernel: this is
// the O(1) baseline the set-difference and check formulas now ride on.
void BM_BddNegation(benchmark::State& state) {
  bdd::Manager m;
  for (std::size_t v = 0; v < 64; ++v) m.new_var();
  Rng rng(19);
  Bdd f = random_sop(m, rng, 64, 32);
  for (auto _ : state) {
    Bdd nf = !f;
    benchmark::DoNotOptimize(nf);
  }
  state.counters["nodes"] = static_cast<double>(m.stats().live_count);
}
BENCHMARK(BM_BddNegation);

void BM_BddExists(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  bdd::Manager m;
  for (std::size_t v = 0; v < vars; ++v) m.new_var();
  Rng rng(11);
  Bdd f = random_sop(m, rng, vars, 24);
  std::vector<bdd::Var> half;
  for (bdd::Var v = 0; v < vars; v += 2) half.push_back(v);
  Bdd cube = m.positive_cube(half);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.exists(f, cube));
  }
}
BENCHMARK(BM_BddExists)->Arg(16)->Arg(32)->Arg(64);

void BM_BddAndExists(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  bdd::Manager m;
  for (std::size_t v = 0; v < vars; ++v) m.new_var();
  Rng rng(13);
  Bdd f = random_sop(m, rng, vars, 24);
  Bdd g = random_sop(m, rng, vars, 24);
  std::vector<bdd::Var> half;
  for (bdd::Var v = 0; v < vars; v += 2) half.push_back(v);
  Bdd cube = m.positive_cube(half);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.and_exists(f, g, cube));
  }
}
BENCHMARK(BM_BddAndExists)->Arg(16)->Arg(32)->Arg(64);

void BM_SatCount(benchmark::State& state) {
  bdd::Manager m;
  for (std::size_t v = 0; v < 48; ++v) m.new_var();
  Rng rng(17);
  Bdd f = random_sop(m, rng, 48, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.sat_count(f));
  }
}
BENCHMARK(BM_SatCount);

/// The traversal inner kernel: one image computation on a real encoding.
void BM_ImageKernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  stg::Stg s = stg::muller_pipeline(n);
  core::SymbolicStg sym(s);
  core::TraversalResult r = core::traverse(sym);
  for (auto _ : state) {
    for (pn::TransitionId t = 0; t < s.net().transition_count(); ++t) {
      benchmark::DoNotOptimize(sym.image(r.reached, t));
    }
  }
  state.counters["reached_nodes"] =
      static_cast<double>(sym.manager().count_nodes(r.reached));
}
BENCHMARK(BM_ImageKernel)->Arg(8)->Arg(16)->Arg(24);

void BM_FullTraversal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  stg::Stg s = stg::muller_pipeline(n);
  for (auto _ : state) {
    core::SymbolicStg sym(s);
    core::TraversalResult r = core::traverse(sym);
    benchmark::DoNotOptimize(r.stats.states);
  }
}
BENCHMARK(BM_FullTraversal)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Sifting(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    stg::Stg s = stg::master_read(6);
    core::SymbolicStg sym(s, core::Ordering::kRandom);
    core::TraversalResult r = core::traverse(sym);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sym.manager().sift());
  }
}
BENCHMARK(BM_Sifting)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
