// Shared helpers for the benchmark binaries: row formatting matching the
// layout of the paper's Table 1, and the arbitration options for the
// mutex family.
#pragma once

#include <cstdio>
#include <string>

#include "core/implementability.hpp"
#include "stg/generators.hpp"

namespace stgcheck::bench {

/// All-pairs arbitration declaration for mutex_arbiter(n): the grant
/// conflicts are by design, so the full pipeline can proceed.
inline core::CheckOptions mutex_options(std::size_t n) {
  core::CheckOptions options;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i + 1; j <= n; ++j) {
      options.arbitration_pairs.push_back(
          {"g" + std::to_string(i), "g" + std::to_string(j)});
    }
  }
  return options;
}

inline void print_table1_header() {
  std::printf("%-12s %7s %7s %8s %12s %9s %9s | %8s %8s %8s %8s %8s\n",
              "example", "places", "trans", "signals", "states",
              "BDD-peak", "BDD-final", "T+C", "NI-p", "Com", "CSC", "Total");
  std::printf("%.*s\n", 124,
              "-----------------------------------------------------------------"
              "-----------------------------------------------------------");
}

inline void print_table1_row(const stg::Stg& stg,
                             const core::ImplementabilityReport& report) {
  std::printf("%-12s %7zu %7zu %8zu %12.4e %9zu %9zu | %8.3f %8.3f %8.3f %8.3f %8.3f\n",
              stg.name().c_str(), stg.net().place_count(),
              stg.net().transition_count(), stg.signal_count(),
              report.traversal.stats.states,
              report.traversal.stats.peak_reached_nodes,
              report.traversal.stats.final_reached_nodes,
              report.times.traversal_consistency, report.times.persistency,
              report.times.commutativity, report.times.csc, report.times.total);
  std::fflush(stdout);
}

}  // namespace stgcheck::bench
