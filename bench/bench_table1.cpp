// Regenerates Table 1 of the paper: symbolic verification of scalable
// STGs with exponentially growing state spaces.
//
// Paper columns: example | # places | # signals | # states |
//                BDD size (peak | final) | CPU s: T+C | NI-p | CSC | Total
// (We add the transition count and the Com column the text describes.)
//
// The families:
//   muller(n)  Muller C-element pipeline     marked graph, persistency free
//   mread(n)   master-read controller        marked graph
//   mutex(n)   n-user ME element             conflict-rich, arbitration
//   select(n)  free-choice input selections  multi-instance labels
//
// The absolute seconds differ from the 1995 hardware, but the paper's
// claim reproduces: state counts grow exponentially while BDD sizes and
// CPU times stay polynomial, and marked graphs get their persistency check
// for free (structural shortcut).
#include "bench_common.hpp"

int main() {
  using namespace stgcheck;
  using namespace stgcheck::bench;

  std::puts("=== Table 1: checking STG implementability by symbolic traversal ===");
  print_table1_header();

  for (std::size_t n : {8u, 16u, 24u, 32u, 40u}) {
    stg::Stg s = stg::muller_pipeline(n);
    core::ImplementabilityReport r = core::check_implementability(s);
    print_table1_row(s, r);
  }
  for (std::size_t n : {2u, 4u, 6u, 8u}) {
    stg::Stg s = stg::master_read(n);
    core::ImplementabilityReport r = core::check_implementability(s);
    print_table1_row(s, r);
  }
  for (std::size_t n : {4u, 8u, 12u, 16u}) {
    stg::Stg s = stg::mutex_arbiter(n);
    core::ImplementabilityReport r = core::check_implementability(s, mutex_options(n));
    print_table1_row(s, r);
  }
  for (std::size_t n : {8u, 16u, 32u}) {
    stg::Stg s = stg::select_chain(n);
    core::ImplementabilityReport r = core::check_implementability(s);
    print_table1_row(s, r);
  }
  return 0;
}
