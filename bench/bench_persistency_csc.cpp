// Fig. 6 / Sec. 5.3 scaling: the cost of the pairwise persistency check
// and of the region-based CSC check as the state space explodes.
//
// mutex(n) is the conflict-rich family (n grant conflicts on one place);
// select(n) exercises multi-instance labels; the marked-graph families
// appear as the control group with a structurally free persistency check,
// matching the paper's remark that their NI-p time is negligible.
#include <cstdio>

#include "bench_common.hpp"
#include "core/checks.hpp"
#include "core/traversal.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcheck;

void run(const stg::Stg& s) {
  core::SymbolicStg sym(s);
  core::TraversalResult traversal = core::traverse(sym);

  Stopwatch watch;
  const auto transition_violations =
      core::transition_persistency(sym, traversal.reached);
  const double t_tp = watch.restart();

  const auto signal_violations = core::signal_persistency(sym, traversal.reached);
  const double t_sp = watch.restart();

  const core::SymCscResult csc = core::check_csc(sym, traversal.reached);
  const double t_csc = watch.restart();

  std::printf(
      "%-10s states=%.3e  trans-pers=%7.3fs (%zu pairs)  sig-pers=%7.3fs (%zu)  "
      "csc=%7.3fs (%s)\n",
      s.name().c_str(), traversal.stats.states, t_tp, transition_violations.size(),
      t_sp, signal_violations.size(), t_csc,
      csc.complete_state_coding ? "ok" : "violated");
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::puts("=== Persistency (Fig. 6) and CSC (Sec. 5.3) scaling ===");
  for (std::size_t n : {2u, 4u, 8u, 12u, 16u}) run(stg::mutex_arbiter(n));
  for (std::size_t n : {4u, 8u, 16u, 32u}) run(stg::select_chain(n));
  for (std::size_t n : {8u, 16u, 24u, 32u}) run(stg::muller_pipeline(n));
  return 0;
}
