// Fig. 5 ablation: the paper's chaining traversal against a classic
// frontier BFS and a full-fixpoint recomputation.
//
// Chaining lets transitions later in the pass fire from states discovered
// earlier in the same pass, cutting the number of outer passes (and hence
// peak intermediate BDDs) on long pipelines.
#include <cstdio>

#include "core/relation.hpp"
#include "core/traversal.hpp"
#include "stg/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcheck;

void run(const stg::Stg& s) {
  std::printf("--- %s ---\n", s.name().c_str());
  struct Arm {
    const char* name;
    core::TraversalStrategy strategy;
  };
  for (const Arm& arm :
       {Arm{"chaining (Fig.5)", core::TraversalStrategy::kChaining},
        Arm{"frontier BFS", core::TraversalStrategy::kFrontierBfs},
        Arm{"full fixpoint", core::TraversalStrategy::kFullFixpoint}}) {
    Stopwatch watch;
    core::SymbolicStg sym(s);
    core::TraversalOptions options;
    options.strategy = arm.strategy;
    core::TraversalResult r = core::traverse(sym, options);
    std::printf(
        "  %-18s passes=%4zu images=%6zu peak=%8zu nodes time=%7.3fs states=%.3e\n",
        arm.name, r.stats.passes, r.stats.image_computations,
        r.stats.peak_reached_nodes, watch.seconds(), r.stats.states);
    std::fflush(stdout);
  }
  // The conventional alternative the paper avoids: one monolithic
  // transition relation over (V, V') applied by relational product.
  {
    Stopwatch watch;
    core::SymbolicStg sym(s, core::Ordering::kInterleaved, 1 << 14,
                          /*with_primed_vars=*/true);
    core::RelationalEngine engine(sym);
    const std::size_t relation_nodes = sym.manager().count_nodes(engine.monolithic());
    core::RelationalEngine::ReachResult r = engine.reach();
    std::printf(
        "  %-18s passes=%4zu relation=%6zu peak=%8zu nodes time=%7.3fs states=%.3e\n",
        "monolithic rel.", r.passes, relation_nodes, r.peak_nodes,
        watch.seconds(), sym.count_states(r.reached));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::puts("=== Traversal strategy ablation (Fig. 5) ===");
  run(stg::muller_pipeline(16));
  run(stg::master_read(8));
  run(stg::mutex_arbiter(12));
  run(stg::select_chain(24));
  return 0;
}
