// Fig. 5 ablation: the paper's chaining traversal against a classic
// frontier BFS, a full-fixpoint recomputation, the two relational
// ImageEngine backends, and the saturation backend -- each with dynamic
// reordering off and on, and each relational backend additionally with
// conjunct scheduling (cluster ordering + n-ary and_exists_multi
// products; the scheduled monolithic arm never materializes its
// relation). The "monolithic sched." arm runs the self-tuning
// bounded-lookahead schedule: it predicts the relation-construction peak
// from the cluster node counts and falls back to the unscheduled path
// when the relation is cheap to build (mread8), so the row reports the
// *effective* schedule, which may read "none". The "saturation" arm
// computes the whole fixpoint with the in-kernel REACH operation
// (level-partitioned clusters, no whole-space frontiers; see
// docs/architecture.md).
//
// Chaining lets transitions later in the pass fire from states discovered
// earlier in the same pass, cutting the number of outer passes (and hence
// peak intermediate BDDs) on long pipelines. The relational arms make the
// paper's "cofactor beats relations" claim a fair fight: the monolithic
// relation is the strawman the paper argued against, the partitioned arm
// is the modern baseline (support-clustered relations with early
// quantification, fired with disjunctive chaining).
//
// The sift toggle measures the reordering lever the paper never had:
// variable groups keep each primed twin pair together, so even the
// relational backends can reorder mid-traversal. The sift arms run
// *converged* sifting (repeat passes until one buys < 1%): a single pass
// settling in a poor local minimum is exactly the mread8 chaining+sift
// regression the complement-edge rewrite exposed, and convergence is the
// candidate fix -- the "reorders" column counts completed passes, so a
// converged arm shows > 1 where it mattered. The between-pass GC and
// watermark run on the same schedule in both arms (core::AutoSiftPolicy),
// so comparing a "+sift" row against its baseline isolates what the
// reordering itself buys. Expect wins where the traversal's working set
// dominates and losses where sifting optimizes the persistent BDDs at the
// expense of the relational image intermediates (mread8 monolithic):
// dynamic reordering is a lever, not a free lunch.
//
// Every row reports peak_intermediate_nodes: the worst transient live-node
// overhead of a single image/preimage step (peak inside the step minus
// live entering it), sampled by the engines' step gauges. This is the
// number conjunct scheduling attacks -- the select24 monolithic arm's
// multi-million-node and_exists intermediates live here, not in any
// stored BDD.
//
// Every row also reports the kernel-health counters that complement-edge
// and cache work move: the computed-cache hit rate and the unique-table
// load factor, both read from ManagerStats at the end of the arm.
//
// The parallel-kernel axis reruns the two winner arms (saturation and the
// scheduled monolithic product) with the work-stealing pool attached
// ("saturation t4", "monolithic sched. t8", ...); their rows carry a
// "threads" field, and threads=1 rows are the bit-identical reference the
// regression gate holds the thread arms' state counts to.
//
// Results are printed and also written to BENCH_traversal.json.
// Usage: bench_traversal_strategies [--sift | --no-sift]
//                                   [--family <name>]... [--out <path>]
//                                   [--threads <n>]...
//   --sift     only the sift-on arms  (writes BENCH_traversal.sift.json)
//   --no-sift  only the sift-off arms (writes BENCH_traversal.nosift.json)
//   --family   run only the named instance (classic: muller16, mread8,
//              mutex12, select24; scaled: muller32/64, mutex24/48,
//              select48/96 -- the scaled tiers run only the saturation
//              pair, classic vs templated); repeatable. The CI
//              bench-smoke job uses this to gate on the fast families.
//   --threads  thread counts for the parallel-kernel axis; repeatable
//              (default 1, 4, 8). "1" alone suppresses the thread arms.
//   --out      override the output JSON path.
//   (default: both arms, all families, written to BENCH_traversal.json)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "core/image_engine.hpp"
#include "core/traversal.hpp"
#include "stg/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcheck;

struct Row {
  std::string family;
  std::string arm;
  bool sift = false;
  std::string schedule = "none";  // conjunct schedule of the engine
  std::size_t threads = 1;        // BDD kernel worker threads
  std::size_t passes = 0;
  std::size_t images = 0;
  std::size_t peak_reached = 0;   // BDD size of Reached (Table 1 "peak")
  std::size_t peak_live = 0;      // manager-wide live-node high water
  std::size_t peak_intermediate = 0;  // worst single-step transient overhead
  std::size_t relation_nodes = 0; // 0 for the cofactor arms
  std::size_t units = 0;
  std::size_t scheduled_conjuncts = 0;  // factor positions (0 unscheduled)
  std::size_t template_groups = 0;      // shared isomorphism groups (tmpl arms)
  std::size_t template_saved_nodes = 0; // estimated nodes sharing avoided
  std::size_t reorders = 0;       // completed sift passes
  double cache_hit_rate = 0;      // computed-cache hits / lookups
  double unique_load = 0;         // unique-table nodes per bucket
  double seconds = 0;
  double states = 0;
  // Observability extras (profiling armed on every arm): phase timings,
  // the pool's steal-rate, and the per-group cache hit rates that split
  // the aggregate cache_hit_rate (binary ops / REACH / n-ary multi /
  // permute memo -- the groups partition the aggregate exactly).
  double gc_time_ms = 0;
  double sift_time_ms = 0;
  double steal_rate = 0;
  double cache_hit_binary = 0;
  double cache_hit_reach = 0;
  double cache_hit_multi = 0;
  double cache_hit_permute = 0;
};

std::vector<Row> g_rows;

void record(const Row& row) {
  std::printf(
      "  %-22s thr=%zu passes=%4zu images=%6zu peak=%8zu live-peak=%8zu "
      "inter=%8zu rel=%6zu units=%4zu conj=%3zu tgrp=%3zu tsave=%6zu "
      "reorders=%2zu hit=%.3f load=%.2f time=%7.3fs states=%.3e\n",
      row.arm.c_str(), row.threads, row.passes, row.images, row.peak_reached,
      row.peak_live, row.peak_intermediate, row.relation_nodes, row.units,
      row.scheduled_conjuncts, row.template_groups, row.template_saved_nodes,
      row.reorders, row.cache_hit_rate, row.unique_load, row.seconds,
      row.states);
  std::fflush(stdout);
  g_rows.push_back(row);
}

core::TraversalOptions arm_options(core::TraversalStrategy strategy, bool sift,
                                   core::ScheduleKind schedule) {
  core::TraversalOptions options;
  options.strategy = strategy;
  options.auto_sift = sift;
  // The sift arms run converged sifting: the candidate fix for a single
  // pass settling in a poor local minimum (mread8 chaining+sift).
  options.sift_converged = sift;
  options.engine_options.schedule = schedule;
  return options;
}

void run_cofactor_arm(const stg::Stg& s, const std::string& name,
                      core::TraversalStrategy strategy, bool sift) {
  Stopwatch watch;
  core::SymbolicStg sym(s);
  sym.manager().set_profiling(true);  // arm GC/sift phase timings
  core::CofactorEngine engine(sym);
  core::TraversalResult r = core::traverse(
      engine, arm_options(strategy, sift, core::ScheduleKind::kNone));
  const bdd::ManagerStats ms = sym.manager().stats();
  const bdd::ManagerProfile prof = sym.manager().profile();
  record(Row{s.name(), name, sift, "none", /*threads=*/1, r.stats.passes,
             r.stats.image_computations, r.stats.peak_reached_nodes,
             sym.manager().peak_live_nodes(),
             engine.stats().peak_intermediate_nodes,
             engine.stats().relation_nodes, engine.stats().units,
             engine.stats().scheduled_conjuncts,
             /*template_groups=*/0, /*template_saved_nodes=*/0,
             sym.manager().reorder_epoch(), ms.cache_hit_rate(),
             ms.unique_load_factor(), watch.seconds(), r.stats.states,
             prof.gc_seconds * 1e3, prof.sift_seconds * 1e3,
             sym.manager().pool_telemetry().steal_rate,
             ms.binary_cache_hit_rate(), ms.reach_cache_hit_rate(),
             ms.multi_cache_hit_rate(), ms.permute_cache_hit_rate()});
}

void run_relation_arm(const stg::Stg& s, const std::string& name,
                      core::EngineKind kind, core::TraversalStrategy strategy,
                      bool sift,
                      core::ScheduleKind schedule = core::ScheduleKind::kNone,
                      std::size_t threads = 1,
                      core::TemplateMode templates = core::TemplateMode::kOff) {
  Stopwatch watch;
  core::SymbolicStg sym(s, core::Ordering::kInterleaved, 1 << 14,
                        /*with_primed_vars=*/true);
  core::EngineOptions engine_options;
  engine_options.schedule = schedule;
  engine_options.threads = threads;
  engine_options.relation_templates = templates;
  sym.manager().set_profiling(true);  // arm GC/sift phase timings
  const std::unique_ptr<core::ImageEngine> engine =
      core::make_engine(kind, sym, engine_options);
  core::TraversalOptions options = arm_options(strategy, sift, schedule);
  options.engine_options.threads = threads;
  core::TraversalResult r = core::traverse(*engine, options);
  const bdd::ManagerStats ms = sym.manager().stats();
  const bdd::ManagerProfile prof = sym.manager().profile();
  // The *effective* schedule: the self-tuning monolithic engine may have
  // fallen back to none (EngineOptions::monolithic_fallback_nodes).
  record(Row{s.name(), name, sift, core::to_string(engine->schedule_kind()),
             threads, r.stats.passes,
             r.stats.image_computations, r.stats.peak_reached_nodes,
             sym.manager().peak_live_nodes(),
             engine->stats().peak_intermediate_nodes,
             engine->stats().relation_nodes, engine->stats().units,
             engine->stats().scheduled_conjuncts,
             engine->stats().template_groups,
             engine->stats().template_saved_nodes,
             sym.manager().reorder_epoch(),
             ms.cache_hit_rate(), ms.unique_load_factor(), watch.seconds(),
             r.stats.states,
             prof.gc_seconds * 1e3, prof.sift_seconds * 1e3,
             sym.manager().pool_telemetry().steal_rate,
             ms.binary_cache_hit_rate(), ms.reach_cache_hit_rate(),
             ms.multi_cache_hit_rate(), ms.permute_cache_hit_rate()});
}

void run(const stg::Stg& s, bool sift_off, bool sift_on,
         const std::vector<std::size_t>& thread_axis, bool scaled) {
  std::printf("--- %s ---\n", s.name().c_str());
  std::vector<bool> toggles;
  if (sift_off) toggles.push_back(false);
  if (sift_on) toggles.push_back(true);
  // The scaled tiers (muller32/64, mutex24/48, select48/96) exist to
  // measure template sharing at size, not to re-litigate the full
  // ablation: they run only the saturation pair (classic vs templated),
  // whose wall-clock stays in seconds where the frontier arms would take
  // minutes to hours.
  if (scaled) {
    for (const bool sift : toggles) {
      const char* suffix = sift ? "+sift" : "";
      run_relation_arm(s, std::string("saturation") + suffix,
                       core::EngineKind::kSaturation,
                       core::TraversalStrategy::kChaining, sift);
      run_relation_arm(s, std::string("saturation tmpl") + suffix,
                       core::EngineKind::kSaturation,
                       core::TraversalStrategy::kChaining, sift,
                       core::ScheduleKind::kNone, /*threads=*/1,
                       core::TemplateMode::kOn);
    }
    return;
  }
  for (const bool sift : toggles) {
    const char* suffix = sift ? "+sift" : "";
    run_cofactor_arm(s, std::string("chaining (Fig.5)") + suffix,
                     core::TraversalStrategy::kChaining, sift);
    run_cofactor_arm(s, std::string("frontier BFS") + suffix,
                     core::TraversalStrategy::kFrontierBfs, sift);
    run_cofactor_arm(s, std::string("full fixpoint") + suffix,
                     core::TraversalStrategy::kFullFixpoint, sift);
    run_relation_arm(s, std::string("monolithic rel.") + suffix,
                     core::EngineKind::kMonolithicRelation,
                     core::TraversalStrategy::kFrontierBfs, sift);
    run_relation_arm(s, std::string("partitioned rel.") + suffix,
                     core::EngineKind::kPartitionedRelation,
                     core::TraversalStrategy::kChaining, sift);
    // The scheduled arms: same strategies, conjunct-scheduled products.
    // The monolithic one runs the self-tuning bounded-lookahead schedule
    // (falls back to none when the relation is cheap to build).
    run_relation_arm(s, std::string("monolithic sched.") + suffix,
                     core::EngineKind::kMonolithicRelation,
                     core::TraversalStrategy::kFrontierBfs, sift,
                     core::ScheduleKind::kBoundedLookahead);
    run_relation_arm(s, std::string("partitioned sched.") + suffix,
                     core::EngineKind::kPartitionedRelation,
                     core::TraversalStrategy::kChaining, sift,
                     core::ScheduleKind::kSupportOverlap);
    // The saturation arm: the whole fixpoint in one in-kernel REACH.
    run_relation_arm(s, std::string("saturation") + suffix,
                     core::EngineKind::kSaturation,
                     core::TraversalStrategy::kChaining, sift);
    // The templated saturation arm: isomorphic relations share one
    // template body (EngineOptions::relation_templates), fired in place
    // by the kernel's level-shift mechanism. Reached sets and state
    // counts are bit-identical to the classic saturation arm; the
    // relation_nodes / template_saved_nodes columns show what sharing
    // buys.
    run_relation_arm(s, std::string("saturation tmpl") + suffix,
                     core::EngineKind::kSaturation,
                     core::TraversalStrategy::kChaining, sift,
                     core::ScheduleKind::kNone, /*threads=*/1,
                     core::TemplateMode::kOn);
  }
  // The parallel-kernel axis: the two winner arms (in-kernel saturation
  // and the scheduled monolithic product) rerun with the work-stealing
  // pool attached. Sift stays off so the row isolates the kernel's
  // threading; the 1-thread rows above are the bit-identical reference
  // the regression gate compares state counts against.
  if (!sift_off) return;
  for (const std::size_t threads : thread_axis) {
    if (threads == 1) continue;  // the plain arms above are the t1 rows
    const std::string suffix = " t" + std::to_string(threads);
    run_relation_arm(s, "saturation" + suffix, core::EngineKind::kSaturation,
                     core::TraversalStrategy::kChaining, /*sift=*/false,
                     core::ScheduleKind::kNone, threads);
    run_relation_arm(s, "monolithic sched." + suffix,
                     core::EngineKind::kMonolithicRelation,
                     core::TraversalStrategy::kFrontierBfs, /*sift=*/false,
                     core::ScheduleKind::kBoundedLookahead, threads);
  }
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    // A state count beyond double range (select96's sat_count multiplies
    // by 2^vars past 1e308) prints as "inf", which no JSON parser takes;
    // spell it the way Python's json module reads back.
    char states_buf[32];
    if (std::isfinite(r.states)) {
      std::snprintf(states_buf, sizeof states_buf, "%.6e", r.states);
    } else {
      std::snprintf(states_buf, sizeof states_buf, "%s",
                    r.states > 0 ? "Infinity" : "-Infinity");
    }
    std::fprintf(f,
                 "  {\"family\": \"%s\", \"arm\": \"%s\", \"sift\": %s, "
                 "\"schedule\": \"%s\", \"threads\": %zu, \"passes\": %zu, "
                 "\"images\": %zu, \"peak_reached_nodes\": %zu, "
                 "\"peak_live_nodes\": %zu, \"peak_intermediate_nodes\": %zu, "
                 "\"relation_nodes\": %zu, "
                 "\"units\": %zu, \"scheduled_conjuncts\": %zu, "
                 "\"template_groups\": %zu, \"template_saved_nodes\": %zu, "
                 "\"reorders\": %zu, "
                 "\"cache_hit_rate\": %.4f, \"unique_table_load\": %.4f, "
                 "\"gc_time_ms\": %.3f, \"sift_time_ms\": %.3f, "
                 "\"steal_rate\": %.4f, "
                 "\"cache_hit_binary\": %.4f, \"cache_hit_reach\": %.4f, "
                 "\"cache_hit_multi\": %.4f, \"cache_hit_permute\": %.4f, "
                 "\"seconds\": %.6f, \"states\": %s}%s\n",
                 r.family.c_str(), r.arm.c_str(), r.sift ? "true" : "false",
                 r.schedule.c_str(), r.threads, r.passes, r.images,
                 r.peak_reached,
                 r.peak_live, r.peak_intermediate, r.relation_nodes, r.units,
                 r.scheduled_conjuncts, r.template_groups,
                 r.template_saved_nodes, r.reorders, r.cache_hit_rate,
                 r.unique_load, r.gc_time_ms, r.sift_time_ms, r.steal_rate,
                 r.cache_hit_binary, r.cache_hit_reach, r.cache_hit_multi,
                 r.cache_hit_permute, r.seconds, states_buf,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, g_rows.size());
}

bool family_selected(const std::vector<std::string>& families,
                     const char* name) {
  if (families.empty()) return true;
  for (const std::string& f : families) {
    if (f == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bool sift_off = true;
  bool sift_on = true;
  std::vector<std::string> families;
  std::vector<std::size_t> thread_axis;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sift") == 0) {
      sift_off = false;
    } else if (std::strcmp(argv[i], "--no-sift") == 0) {
      sift_on = false;
    } else if (std::strcmp(argv[i], "--family") == 0 && i + 1 < argc) {
      families.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const std::optional<std::size_t> n =
          core::parse_thread_count(argv[++i]);
      if (!n.has_value()) {
        std::fprintf(stderr, "bad thread count '%s' (valid: %s)\n",
                     argv[i], core::valid_thread_count_range().c_str());
        return 1;
      }
      thread_axis.push_back(*n);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sift | --no-sift] [--family <name>]... "
                   "[--threads <n>]... [--out <path>]\n",
                   argv[0]);
      return 1;
    }
  }
  if (thread_axis.empty()) thread_axis = {1, 4, 8};
  if (!sift_off && !sift_on) {
    // Both flags together would run nothing and clobber the JSON with [].
    std::fprintf(stderr, "--sift and --no-sift are mutually exclusive\n");
    return 1;
  }
  // The shared roster (stg::family_instances) drives --family validation
  // and the dispatch: the classic sizes run the full ablation, the scaled
  // tiers run the saturation pair only (see run()).
  const auto is_classic = [](const std::string& name) {
    return name == "muller16" || name == "mread8" || name == "mutex12" ||
           name == "select24";
  };
  for (const std::string& f : families) {
    const bool known =
        std::any_of(stg::family_instances().begin(),
                    stg::family_instances().end(),
                    [&](const stg::FamilyInstance& fam) { return f == fam.name; });
    if (!known) {
      std::fprintf(stderr, "unknown family '%s'\n", f.c_str());
      return 1;
    }
  }
  std::puts("=== Traversal strategy ablation (Fig. 5) ===");
  for (const stg::FamilyInstance& fam : stg::family_instances()) {
    if (family_selected(families, fam.name)) {
      run(fam.make(fam.n), sift_off, sift_on, thread_axis,
          /*scaled=*/!is_classic(fam.name));
    }
  }
  if (out_path != nullptr) {
    write_json(out_path);
    return 0;
  }
  // Restricted runs write to a mode- and subset-suffixed file so a half
  // table never clobbers the canonical comparison artifact (or another
  // restricted run's output).
  const std::string mode = sift_off && sift_on ? "" : sift_on ? ".sift" : ".nosift";
  const std::string subset = families.empty() ? "" : ".partial";
  write_json(("BENCH_traversal" + subset + mode + ".json").c_str());
  return 0;
}
