// Fig. 5 ablation: the paper's chaining traversal against a classic
// frontier BFS, a full-fixpoint recomputation, and the two relational
// ImageEngine backends.
//
// Chaining lets transitions later in the pass fire from states discovered
// earlier in the same pass, cutting the number of outer passes (and hence
// peak intermediate BDDs) on long pipelines. The relational arms make the
// paper's "cofactor beats relations" claim a fair fight: the monolithic
// relation is the strawman the paper argued against, the partitioned arm
// is the modern baseline (support-clustered relations with early
// quantification, fired with disjunctive chaining).
//
// Results are printed and also written to BENCH_traversal.json.
#include <cstdio>
#include <string>
#include <vector>

#include "core/image_engine.hpp"
#include "core/traversal.hpp"
#include "stg/generators.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace stgcheck;

struct Row {
  std::string family;
  std::string arm;
  std::size_t passes = 0;
  std::size_t images = 0;
  std::size_t peak_reached = 0;   // BDD size of Reached (Table 1 "peak")
  std::size_t peak_live = 0;      // manager-wide live-node high water
  std::size_t relation_nodes = 0; // 0 for the cofactor arms
  std::size_t units = 0;
  double seconds = 0;
  double states = 0;
};

std::vector<Row> g_rows;

void record(const Row& row) {
  std::printf(
      "  %-18s passes=%4zu images=%6zu peak=%8zu live-peak=%8zu rel=%6zu "
      "units=%4zu time=%7.3fs states=%.3e\n",
      row.arm.c_str(), row.passes, row.images, row.peak_reached, row.peak_live,
      row.relation_nodes, row.units, row.seconds, row.states);
  std::fflush(stdout);
  g_rows.push_back(row);
}

void run_cofactor_arm(const stg::Stg& s, const char* name,
                      core::TraversalStrategy strategy) {
  Stopwatch watch;
  core::SymbolicStg sym(s);
  core::CofactorEngine engine(sym);
  core::TraversalOptions options;
  options.strategy = strategy;
  core::TraversalResult r = core::traverse(engine, options);
  record(Row{s.name(), name, r.stats.passes, r.stats.image_computations,
             r.stats.peak_reached_nodes, sym.manager().peak_live_nodes(),
             engine.stats().relation_nodes, engine.stats().units,
             watch.seconds(), r.stats.states});
}

void run_relation_arm(const stg::Stg& s, const char* name,
                      core::EngineKind kind, core::TraversalStrategy strategy) {
  Stopwatch watch;
  core::SymbolicStg sym(s, core::Ordering::kInterleaved, 1 << 14,
                        /*with_primed_vars=*/true);
  const std::unique_ptr<core::ImageEngine> engine =
      core::make_engine(kind, sym);
  core::TraversalOptions options;
  options.strategy = strategy;
  core::TraversalResult r = core::traverse(*engine, options);
  record(Row{s.name(), name, r.stats.passes, r.stats.image_computations,
             r.stats.peak_reached_nodes, sym.manager().peak_live_nodes(),
             engine->stats().relation_nodes, engine->stats().units,
             watch.seconds(), r.stats.states});
}

void run(const stg::Stg& s) {
  std::printf("--- %s ---\n", s.name().c_str());
  run_cofactor_arm(s, "chaining (Fig.5)", core::TraversalStrategy::kChaining);
  run_cofactor_arm(s, "frontier BFS", core::TraversalStrategy::kFrontierBfs);
  run_cofactor_arm(s, "full fixpoint", core::TraversalStrategy::kFullFixpoint);
  run_relation_arm(s, "monolithic rel.", core::EngineKind::kMonolithicRelation,
                   core::TraversalStrategy::kFrontierBfs);
  run_relation_arm(s, "partitioned rel.", core::EngineKind::kPartitionedRelation,
                   core::TraversalStrategy::kChaining);
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "  {\"family\": \"%s\", \"arm\": \"%s\", \"passes\": %zu, "
                 "\"images\": %zu, \"peak_reached_nodes\": %zu, "
                 "\"peak_live_nodes\": %zu, \"relation_nodes\": %zu, "
                 "\"units\": %zu, \"seconds\": %.6f, \"states\": %.6e}%s\n",
                 r.family.c_str(), r.arm.c_str(), r.passes, r.images,
                 r.peak_reached, r.peak_live, r.relation_nodes, r.units,
                 r.seconds, r.states, i + 1 < g_rows.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows)\n", path, g_rows.size());
}

}  // namespace

int main() {
  std::puts("=== Traversal strategy ablation (Fig. 5) ===");
  run(stg::muller_pipeline(16));
  run(stg::master_read(8));
  run(stg::mutex_arbiter(12));
  run(stg::select_chain(24));
  write_json("BENCH_traversal.json");
  return 0;
}
