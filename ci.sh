#!/usr/bin/env bash
# Tier-1 verification plus strict warnings on the library targets.
# Mirrors .github/workflows/ci.yml for offline use.
#
# Usage: ci.sh [--fast]
#   --fast  run only the `unit` ctest label (skips the property and
#           integration suites; the CI sanitize job always runs everything)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build-ci}"

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
  esac
done

CMAKE_EXTRA=()
if command -v ccache > /dev/null 2>&1; then
  CMAKE_EXTRA+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . -DSTGCHECK_WERROR=ON "${CMAKE_EXTRA[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
if [[ "$FAST" == 1 ]]; then
  ctest --test-dir "$BUILD_DIR" -L unit --output-on-failure -j "$(nproc)"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
