#!/usr/bin/env bash
# Tier-1 verification plus strict warnings on the library targets.
# Mirrors .github/workflows/ci.yml for offline use.
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DSTGCHECK_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
