.model mutex2
.inputs r1 r2
.outputs g1 g2
.graph
r1+ req1
g1+ cs1
r1- done1
g1- idle1
g1- free
r2+ req2
g2+ cs2
r2- done2
g2- idle2
g2- free
free g1+
free g2+
idle1 r1+
req1 g1+
cs1 r1-
done1 g1-
idle2 r2+
req2 g2+
cs2 r2-
done2 g2-
.marking { free idle1 idle2 }
.initial_values r1=0 g1=0 r2=0 g2=0
.end
