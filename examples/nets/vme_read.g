.model vme_read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack-
d- lds-
dtack- dsr+
lds- ldtack-
ldtack- lds+
.marking { <dtack-,dsr+> <ldtack-,lds+> }
.initial_values dsr=0 ldtack=0 lds=0 d=0 dtack=0
.end
