.model muller4
.inputs in
.outputs c1 c2 c3 c4
.graph
in+ c1+
in- c1-
c1+ c2+
c1+ in-
c1- c2-
c1- in+
c2+ c1-
c2+ c3+
c2- c1+
c2- c3-
c3+ c2-
c3+ c4+
c3- c2+
c3- c4-
c4+ c3-
c4- c3+
.marking { <c2-,c1+> <c3-,c2+> <c4-,c3+> <c1-,in+> }
.initial_values in=0 c1=0 c2=0 c3=0 c4=0
.end
