// Quickstart: build a small STG programmatically, check implementability,
// and derive the gate equations.
//
// The STG is a simple 4-phase handshake controller: the environment raises
// `req`, the circuit answers with `ack`, and both return to zero:
//
//     req+ -> ack+ -> req- -> ack-
//
// Build and run:
//     cmake -B build -G Ninja && cmake --build build
//     ./build/examples/quickstart
#include <cstdio>

#include "core/implementability.hpp"
#include "logic/logic.hpp"
#include "stg/stg.hpp"

int main() {
  using namespace stgcheck;

  // ---- 1. Describe the specification ------------------------------------
  stg::Stg handshake;
  handshake.set_name("handshake");
  const stg::SignalId req = handshake.add_signal("req", stg::SignalKind::kInput);
  const stg::SignalId ack = handshake.add_signal("ack", stg::SignalKind::kOutput);

  const pn::TransitionId req_up = handshake.add_transition(req, stg::Dir::kPlus);
  const pn::TransitionId ack_up = handshake.add_transition(ack, stg::Dir::kPlus);
  const pn::TransitionId req_dn = handshake.add_transition(req, stg::Dir::kMinus);
  const pn::TransitionId ack_dn = handshake.add_transition(ack, stg::Dir::kMinus);

  handshake.connect(req_up, ack_up);
  handshake.connect(ack_up, req_dn);
  handshake.connect(req_dn, ack_dn);
  handshake.connect(ack_dn, req_up, /*tokens=*/1);  // initial token: idle

  handshake.set_initial_value(req, false);
  handshake.set_initial_value(ack, false);
  handshake.validate();

  // ---- 2. Check implementability -----------------------------------------
  core::ImplementabilityReport report = core::check_implementability(handshake);
  std::fputs(report.summary(handshake).c_str(), stdout);

  if (report.level != core::ImplementabilityLevel::kGateImplementable) {
    std::puts("not gate-implementable; stopping before logic derivation");
    return 1;
  }

  // ---- 3. Derive the complex-gate equations -------------------------------
  logic::LogicResult gates =
      logic::derive_logic(*report.encoding, report.traversal.reached);
  std::puts("\nDerived complex gates:");
  std::fputs(gates.netlist().c_str(), stdout);

  // For this handshake the answer is the 1-literal buffer: ack = req.
  return gates.all_derivable ? 0 : 1;
}
