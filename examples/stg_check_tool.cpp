// stg_check: the command-line implementability checker -- the one-shot,
// one-session consumer of the session layer (core/session.hpp). Parsing
// aside, everything it does is: build a CheckSession, run it, render the
// session's report and event records. The resident form of the same
// pipeline is stg_checkd (examples/stg_checkd.cpp).
//
//   usage: stg_check [options] <file.g>
//     --arbitrate A,B   declare an arbitration pair (repeatable; footnote 1)
//     --ordering  O     interleaved | clustered | declaration |
//                       signals-first | random
//     --strategy  S     chaining | bfs | fixpoint
//     --engine    E     cofactor | monolithic | partitioned | saturation
//                       (image backend; see docs/architecture.md)
//     --schedule  C     none | support-overlap | bounded-lookahead
//                       (conjunct scheduling for the relational engines:
//                       cluster firing order + n-ary relational products;
//                       bounded-lookahead self-tunes the monolithic engine
//                       back to none when its relation is cheap to build)
//     --threads   N     BDD kernel worker threads (1 = exact sequential
//                       kernel, bit-identical results at any count)
//     --json            machine-readable output: one JSON document with
//                       the typed event records and the full report
//                       (field-for-field the facts of the human summary;
//                       same schema as the stg_checkd "result" reply)
//     --equations       also derive and print the complex-gate netlist
//     --explain         print firing-trace witnesses for CSC/persistency
//                       violations (uses the explicit engine)
//     --dot             print the STG as Graphviz dot
//     --write-back      echo the parsed STG in .g format (round-trip check)
//
// Exit status: 0 if the STG is gate- or I/O-implementable, 2 otherwise,
// 1 on usage or parse errors.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/session.hpp"
#include "logic/logic.hpp"
#include "server/protocol.hpp"
#include "sg/witnesses.hpp"
#include "stg/astg_io.hpp"
#include "stg/dot_export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: stg_check [options] <file.g>\n"
      "  --arbitrate A,B   declare an arbitration signal pair (repeatable)\n"
      "  --ordering  O     interleaved | clustered | declaration |\n"
      "                    signals-first | random\n"
      "  --strategy  S     chaining | bfs | fixpoint\n"
      "  --engine    E     cofactor | monolithic | partitioned | saturation\n"
      "  --schedule  C     none | support-overlap | bounded-lookahead\n"
      "  --threads   N     BDD kernel worker threads (1 = sequential)\n"
      "  --json            machine-readable event records + report\n"
      "  --equations       derive and print the complex-gate netlist\n"
      "  --explain         print firing-trace witnesses for violations\n"
      "  --dot             print the STG as Graphviz dot\n"
      "  --write-back      echo the parsed STG in .g format\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stgcheck;

  core::SessionOptions options;
  bool json_output = false;
  bool equations = false;
  bool explain = false;
  bool dot = false;
  bool write_back = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_arg = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--arbitrate") {
      const std::string pair = next_arg();
      const std::size_t comma = pair.find(',');
      if (comma == std::string::npos) {
        std::fprintf(stderr, "--arbitrate expects A,B got %s\n", pair.c_str());
        return 1;
      }
      options.check.arbitration_pairs.push_back(
          {pair.substr(0, comma), pair.substr(comma + 1)});
    } else if (arg == "--ordering") {
      const std::string o = next_arg();
      const std::optional<core::Ordering> ordering = core::parse_ordering(o);
      if (!ordering.has_value()) {
        std::fprintf(stderr, "unknown ordering '%s' (valid: %s)\n", o.c_str(),
                     core::valid_ordering_names().c_str());
        return 1;
      }
      options.check.ordering = *ordering;
    } else if (arg == "--strategy") {
      const std::string s = next_arg();
      const std::optional<core::TraversalStrategy> strategy =
          core::parse_traversal_strategy(s);
      if (!strategy.has_value()) {
        std::fprintf(stderr, "unknown strategy '%s' (valid: %s)\n", s.c_str(),
                     core::valid_traversal_strategy_names().c_str());
        return 1;
      }
      options.check.strategy = *strategy;
    } else if (arg == "--engine") {
      const std::string e = next_arg();
      const std::optional<core::EngineKind> kind = core::parse_engine_kind(e);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown engine '%s' (valid: %s)\n", e.c_str(),
                     core::valid_engine_kind_names().c_str());
        return 1;
      }
      options.check.engine = *kind;
    } else if (arg == "--schedule") {
      const std::string c = next_arg();
      const std::optional<core::ScheduleKind> kind =
          core::parse_schedule_kind(c);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown schedule '%s' (valid: %s)\n", c.c_str(),
                     core::valid_schedule_kind_names().c_str());
        return 1;
      }
      options.check.engine_options.schedule = *kind;
    } else if (arg == "--threads") {
      const std::string n = next_arg();
      const std::optional<std::size_t> count = core::parse_thread_count(n);
      if (!count.has_value()) {
        std::fprintf(stderr, "bad thread count '%s' (valid: %s)\n", n.c_str(),
                     core::valid_thread_count_range().c_str());
        return 1;
      }
      options.check.engine_options.threads = *count;
    } else if (arg == "--json") {
      json_output = true;
    } else if (arg == "--equations") {
      equations = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--write-back") {
      write_back = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage();
      return 1;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }

  try {
    stg::Stg spec = stg::parse_astg_file(path);
    spec.validate();
    if (write_back) {
      std::fputs(stg::write_astg_string(spec).c_str(), stdout);
    }
    if (dot) {
      std::fputs(stg::to_dot(spec).c_str(), stdout);
    }

    core::CheckSession session(spec, std::move(options));
    const core::ImplementabilityReport& report = session.run();

    if (json_output) {
      json::Value events = json::Value::array();
      for (const core::EventRecord& record : session.events().records()) {
        events.push_back(server::event_to_json(record));
      }
      json::Value doc = json::Value::object();
      doc.set("events", std::move(events));
      doc.set("report", server::report_to_json(spec, report));
      std::puts(doc.dump().c_str());
    } else {
      std::fputs(report.summary(spec).c_str(), stdout);
    }

    if (explain && report.safe && report.consistent) {
      sg::StateGraph graph = sg::build_state_graph(spec);
      if (!graph.complete) {
        std::puts("(--explain skipped: net too large for the explicit engine)");
      } else {
        sg::PersistencyOptions popts;
        for (const auto& [a, b] : session.options().check.arbitration_pairs) {
          const stg::SignalId sa = spec.find_signal(a);
          const stg::SignalId sb = spec.find_signal(b);
          if (sa != stg::kNoSignal && sb != stg::kNoSignal) {
            popts.arbitration_pairs.push_back({sa, sb});
          }
        }
        for (const auto& w : sg::explain_persistency_violations(graph, popts)) {
          std::fputs(w.pretty(spec).c_str(), stdout);
        }
        for (const auto& w : sg::explain_csc_violations(graph)) {
          std::fputs(w.pretty(spec).c_str(), stdout);
        }
      }
    }

    if (equations && report.safe && report.consistent) {
      logic::LogicResult gates =
          logic::derive_logic(*report.encoding, report.traversal.reached);
      std::puts("\nComplex-gate netlist:");
      std::fputs(gates.netlist().c_str(), stdout);
    }

    const bool implementable =
        report.level == core::ImplementabilityLevel::kGateImplementable ||
        report.level == core::ImplementabilityLevel::kIoImplementable;
    return implementable ? 0 : 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
