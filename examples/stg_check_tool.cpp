// stg_check: the command-line implementability checker -- the one-shot,
// one-session consumer of the session layer (core/session.hpp). Parsing
// aside, everything it does is: build a CheckSession, run it, render the
// session's report and event records. The resident form of the same
// pipeline is stg_checkd (examples/stg_checkd.cpp).
//
//   usage: stg_check [options] <file.g | --family NAME>
//     --family NAME     check a generated family instance (muller16,
//                       mread8, mutex12, ... -- the bench roster of
//                       stg/generators.hpp) instead of a .g file
//     --arbitrate A,B   declare an arbitration pair (repeatable; footnote 1)
//     --ordering  O     interleaved | clustered | declaration |
//                       signals-first | random
//     --strategy  S     chaining | bfs | fixpoint
//     --engine    E     cofactor | monolithic | partitioned | saturation
//                       (image backend; see docs/architecture.md)
//     --schedule  C     none | support-overlap | bounded-lookahead
//                       (conjunct scheduling for the relational engines:
//                       cluster firing order + n-ary relational products;
//                       bounded-lookahead self-tunes the monolithic engine
//                       back to none when its relation is cheap to build)
//     --threads   N     BDD kernel worker threads (1 = exact sequential
//                       kernel, bit-identical results at any count)
//     --relation-templates M  off | on | auto (saturation backend: share
//                       one template BDD across structurally isomorphic
//                       transition relations, fired in place by the
//                       kernel's level-shift mechanism; auto enables it
//                       only when some isomorphism group has >= 2 members)
//     --initial-nodes N   initial node capacity of the BDD manager
//     --max-live-nodes N  resource budget: live-node cap (0 = unlimited)
//     --max-seconds   S   resource budget: wall-clock deadline
//     --max-steps     N   resource budget: pass/saturation-step cap
//                       (a tripped budget ends the check with a typed
//                       resource_exhausted record and exit status 3)
//     --trace FILE      record Chrome trace_event spans (traversal passes,
//                       engine image calls, GC, sift, REACH rule firings)
//                       and write the chrome://tracing-loadable JSON here
//     --profile         arm kernel wall-clock profiling (per-op, GC and
//                       sift timings in the metrics snapshot); off by
//                       default so plain runs read no clock in the kernel
//     --json            machine-readable output: one JSON document with
//                       the typed event records and the full report
//                       (field-for-field the facts of the human summary;
//                       same schema as the stg_checkd "result" reply)
//     --equations       also derive and print the complex-gate netlist
//     --explain         print firing-trace witnesses for CSC/persistency
//                       violations (uses the explicit engine)
//     --dot             print the STG as Graphviz dot
//     --write-back      echo the parsed STG in .g format (round-trip check)
//
// Exit status: 0 if the STG is gate- or I/O-implementable, 2 otherwise,
// 3 if a resource budget tripped before a verdict, 1 on usage or parse
// errors.
//
// All configuration flags are owned by core::CheckConfig::consume_flag
// -- the same parse path the daemon's "options" object uses -- so the
// CLI and the wire can never drift apart.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "logic/logic.hpp"
#include "server/protocol.hpp"
#include "sg/witnesses.hpp"
#include "stg/astg_io.hpp"
#include "stg/dot_export.hpp"
#include "stg/generators.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: stg_check [options] <file.g | --family NAME>\n"
      "  --family NAME     check a generated family instance (muller16,\n"
      "                    mread8, mutex12, ...) instead of a .g file\n"
      "  --arbitrate A,B   declare an arbitration signal pair (repeatable)\n"
      "  --ordering  O     interleaved | clustered | declaration |\n"
      "                    signals-first | random\n"
      "  --strategy  S     chaining | bfs | fixpoint\n"
      "  --engine    E     cofactor | monolithic | partitioned | saturation\n"
      "  --schedule  C     none | support-overlap | bounded-lookahead\n"
      "  --threads   N     BDD kernel worker threads (1 = sequential)\n"
      "  --relation-templates M  off | on | auto (share isomorphic\n"
      "                    transition relations in the saturation backend)\n"
      "  --initial-nodes N   initial BDD manager capacity\n"
      "  --max-live-nodes N  budget: live-node cap (0 = unlimited)\n"
      "  --max-seconds   S   budget: wall-clock deadline\n"
      "  --max-steps     N   budget: pass/saturation-step cap\n"
      "  --trace FILE      write a Chrome trace_event JSON document\n"
      "  --profile         arm kernel wall-clock profiling\n"
      "  --json            machine-readable event records + report\n"
      "  --equations       derive and print the complex-gate netlist\n"
      "  --explain         print firing-trace witnesses for violations\n"
      "  --dot             print the STG as Graphviz dot\n"
      "  --write-back      echo the parsed STG in .g format\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stgcheck;

  core::SessionOptions options;
  bool json_output = false;
  bool equations = false;
  bool explain = false;
  bool dot = false;
  bool write_back = false;
  std::string path;
  std::string family;

  // One pass over argv: config flags go through the unified parse path,
  // everything else is tool-local.
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    try {
      if (options.consume_flag(args, i)) continue;
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (arg == "--json") {
      json_output = true;
    } else if (arg == "--family") {
      if (i + 1 >= args.size()) {
        std::fputs("--family expects an instance name\n", stderr);
        return 1;
      }
      family = args[++i];
    } else if (arg == "--equations") {
      equations = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--write-back") {
      write_back = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage();
      return 1;
    }
  }
  if (path.empty() == family.empty()) {  // exactly one input source
    usage();
    return 1;
  }

  try {
    stg::Stg spec = family.empty() ? stg::parse_astg_file(path)
                                   : stg::make_family_instance(family);
    spec.validate();
    if (write_back) {
      std::fputs(stg::write_astg_string(spec).c_str(), stdout);
    }
    if (dot) {
      std::fputs(stg::to_dot(spec).c_str(), stdout);
    }

    options.validate();
    core::CheckSession session(spec, std::move(options));
    const core::ImplementabilityReport& report = session.run();
    const bool governed_stop =
        session.outcome() != core::SessionOutcome::kCompleted;

    if (json_output) {
      json::Value events = json::Value::array();
      for (const core::EventRecord& record : session.events().records()) {
        events.push_back(server::event_to_json(record));
      }
      json::Value doc = json::Value::object();
      doc.set("events", std::move(events));
      if (governed_stop) {
        // No report: the check stopped before a verdict. The outcome and
        // the trip gauges take its place (same schema as the daemon's
        // "result" reply).
        doc.set("outcome",
                json::Value(std::string(core::to_string(session.outcome()))));
        doc.set("trip", server::trip_to_json(*session.trip()));
      } else {
        doc.set("report", server::report_to_json(spec, report));
      }
      if (session.options().profile || session.trace() != nullptr) {
        // Observability armed: attach the kernel/pool metrics snapshot.
        // Plain runs keep the pre-existing document schema.
        doc.set("metrics", session.metrics_snapshot().to_json());
      }
      std::puts(doc.dump().c_str());
    } else if (governed_stop) {
      const BudgetTrip& trip = *session.trip();
      std::printf(
          "check stopped before a verdict: %s\n"
          "  (%zu live nodes, %.3f s, %zu steps at the trip)\n",
          core::to_string(session.outcome()), trip.live_nodes,
          trip.elapsed_seconds, trip.steps);
    } else {
      std::fputs(report.summary(spec).c_str(), stdout);
    }
    if (governed_stop) return 3;

    if (explain && report.safe && report.consistent) {
      sg::StateGraph graph = sg::build_state_graph(spec);
      if (!graph.complete) {
        std::puts("(--explain skipped: net too large for the explicit engine)");
      } else {
        sg::PersistencyOptions popts;
        for (const auto& [a, b] : session.options().check.arbitration_pairs) {
          const stg::SignalId sa = spec.find_signal(a);
          const stg::SignalId sb = spec.find_signal(b);
          if (sa != stg::kNoSignal && sb != stg::kNoSignal) {
            popts.arbitration_pairs.push_back({sa, sb});
          }
        }
        for (const auto& w : sg::explain_persistency_violations(graph, popts)) {
          std::fputs(w.pretty(spec).c_str(), stdout);
        }
        for (const auto& w : sg::explain_csc_violations(graph)) {
          std::fputs(w.pretty(spec).c_str(), stdout);
        }
      }
    }

    if (equations && report.safe && report.consistent) {
      logic::LogicResult gates =
          logic::derive_logic(*report.encoding, report.traversal.reached);
      std::puts("\nComplex-gate netlist:");
      std::fputs(gates.netlist().c_str(), stdout);
    }

    const bool implementable =
        report.level == core::ImplementabilityLevel::kGateImplementable ||
        report.level == core::ImplementabilityLevel::kIoImplementable;
    return implementable ? 0 : 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
