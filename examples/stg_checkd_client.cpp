// stg_checkd_client: a reference client for the stg_checkd daemon.
//
// Submits .g files over the daemon's AF_UNIX socket and relays every
// response line to stdout -- streamed event records included -- until the
// request completes. One file uses the "check" op; several (or --batch)
// use the "batch" op and wait for "batch_done".
//
//   usage: stg_checkd_client --socket <path> [options] [file.g ...]
//     --socket  PATH   daemon socket (required)
//     --ping           round-trip check instead of submitting nets
//     --status         print the daemon's status reply
//     --metrics        print the daemon's cumulative metrics snapshot,
//                      rendered as Prometheus-style text (the wire carries
//                      JSON; see util/metrics.hpp)
//     --session ID     with --status: one session's state + progress;
//                      with --metrics: one finished session's snapshot
//     --cancel  ID     cancel a queued/running session
//     --shutdown       ask the daemon to exit
//     --batch          force the batch op even for a single file
//     --quiet          print only result/batch_done/error lines, not the
//                      per-session event stream
//     plus every core::CheckConfig flag (--ordering, --strategy,
//     --engine, --schedule, --threads, --relation-templates,
//     --arbitrate, --initial-nodes, --max-live-nodes, --max-seconds,
//     --max-steps) -- parsed by the unified config and forwarded as the
//     wire "options" object
//
// Exit status: 0 on success, 1 on connection/protocol errors or any
// error reply.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "util/metrics.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: stg_checkd_client --socket <path> [options] [file.g ...]\n"
      "  --socket  PATH   daemon socket (required)\n"
      "  --ping | --status | --metrics | --shutdown\n"
      "  --session ID     with --status/--metrics: one session\n"
      "  --cancel  ID     cancel a queued/running session\n"
      "  --batch          force the batch op for a single file\n"
      "  --quiet          suppress streamed event lines\n"
      "  --ordering O  --strategy S  --engine E  --schedule C\n"
      "  --threads N  --relation-templates M  --arbitrate A,B\n"
      "  --initial-nodes N  --max-live-nodes N  --max-seconds S\n"
      "  --max-steps N\n",
      stderr);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw stgcheck::Error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int connect_to(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw stgcheck::Error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw stgcheck::Error("socket: " + std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw stgcheck::Error("connect " + socket_path + ": " + what);
  }
  return fd;
}

void send_line(int fd, std::string line) {
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::send(fd, line.data() + off, line.size() - off, 0);
    if (n <= 0) throw stgcheck::Error("send: " + std::string(std::strerror(errno)));
    off += static_cast<std::size_t>(n);
  }
}

/// Reads response lines until `done` says the request is complete.
/// Returns false if any error reply was seen. With `prometheus`, a
/// "metrics" reply prints as Prometheus text exposition instead of the
/// raw JSON line.
template <typename DonePredicate>
bool relay_until(int fd, bool quiet, DonePredicate done,
                 bool prometheus = false) {
  using stgcheck::json::Value;
  std::string buffer;
  char chunk[4096];
  bool ok = true;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      std::fputs("connection closed by daemon\n", stderr);
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (line.empty()) continue;
      Value reply;
      try {
        reply = Value::parse(line);
      } catch (const stgcheck::Error&) {
        std::fprintf(stderr, "unparseable reply: %s\n", line.c_str());
        return false;
      }
      const Value* kind = reply.find("reply");
      const bool is_error = kind != nullptr && kind->as_string() == "error";
      const bool is_event = reply.find("event") != nullptr;
      if (is_error) ok = false;
      const Value* snap_obj =
          prometheus && kind != nullptr && kind->as_string() == "metrics"
              ? reply.find("metrics")
              : nullptr;
      if (snap_obj != nullptr) {
        const auto snap =
            stgcheck::metrics::MetricsSnapshot::from_json(*snap_obj);
        std::fputs(snap.to_prometheus().c_str(), stdout);
      } else if (!quiet || !is_event) {
        std::puts(line.c_str());
      }
      if (done(reply)) return ok;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stgcheck;
  using json::Value;

  std::string socket_path;
  std::string op;          // empty = check/batch from files
  std::string session_id;  // --cancel target / --status --session filter
  bool force_batch = false;
  bool quiet = false;
  core::CheckConfig config;  // one parse path with stg_check and the wire
  std::vector<std::string> files;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next_arg = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        usage();
        std::exit(1);
      }
      return args[++i];
    };
    try {
      if (config.consume_flag(args, i)) continue;
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (arg == "--socket") {
      socket_path = next_arg();
    } else if (arg == "--ping" || arg == "--status" || arg == "--metrics" ||
               arg == "--shutdown") {
      op = arg.substr(2);
    } else if (arg == "--cancel") {
      op = "cancel";
      session_id = next_arg();
    } else if (arg == "--session") {
      session_id = next_arg();
    } else if (arg == "--batch") {
      force_batch = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 1;
    } else {
      files.push_back(arg);
    }
  }
  if (socket_path.empty() || (op.empty() && files.empty())) {
    usage();
    return 1;
  }

  try {
    const int fd = connect_to(socket_path);
    bool ok;

    if (!op.empty()) {
      Value request = Value::object();
      request.set("op", Value(op));
      if (!session_id.empty()) request.set("session", Value(session_id));
      send_line(fd, request.dump());
      const std::string final_reply = op == "ping"      ? "pong"
                                      : op == "status"  ? "status"
                                      : op == "cancel"  ? "cancelled"
                                      : op == "metrics" ? "metrics"
                                                        : "bye";
      ok = relay_until(
          fd, quiet,
          [&](const Value& reply) {
            const Value* kind = reply.find("reply");
            return kind != nullptr && (kind->as_string() == final_reply ||
                                       kind->as_string() == "error");
          },
          /*prometheus=*/op == "metrics" && !quiet);
    } else if (files.size() > 1 || force_batch) {
      Value nets = Value::array();
      for (const std::string& path : files) {
        Value entry = Value::object();
        entry.set("id", Value(path));
        entry.set("net", Value(slurp(path)));
        nets.push_back(std::move(entry));
      }
      Value request = Value::object();
      request.set("op", Value("batch"));
      request.set("nets", std::move(nets));
      const Value options = config.to_json();
      if (!options.as_object().empty()) request.set("options", options);
      send_line(fd, request.dump());
      ok = relay_until(fd, quiet, [](const Value& reply) {
        const Value* kind = reply.find("reply");
        return kind != nullptr && kind->as_string() == "batch_done";
      });
    } else {
      Value request = Value::object();
      request.set("op", Value("check"));
      request.set("id", Value(files[0]));
      request.set("net", Value(slurp(files[0])));
      const Value options = config.to_json();
      if (!options.as_object().empty()) request.set("options", options);
      send_line(fd, request.dump());
      ok = relay_until(fd, quiet, [](const Value& reply) {
        const Value* kind = reply.find("reply");
        // A rejected net gets an error line and never a result.
        return kind != nullptr && (kind->as_string() == "result" ||
                                   kind->as_string() == "error");
      });
    }

    ::close(fd);
    return ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
