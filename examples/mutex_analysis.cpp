// Figures 1 and 2 of the paper: the two-user mutual exclusion element.
//
// Prints the three state models of Fig. 2 -- the Reachability Graph
// (markings), the State Graph (codes) and the full state graph (pairs) --
// and then runs the implementability checks twice: strictly (the grant
// conflict is reported as a persistency violation) and with the
// arbitration point declared (footnote 1 of the paper), after which the
// element is gate-implementable.
#include <cstdio>

#include "core/implementability.hpp"
#include "sg/explicit_checks.hpp"
#include "sg/state_graph.hpp"
#include "stg/generators.hpp"

int main() {
  using namespace stgcheck;

  stg::Stg me = stg::examples::mutex2();
  const pn::PetriNet& net = me.net();

  std::puts("== The mutual exclusion element (Fig. 1) ==");
  std::printf("signals:");
  for (stg::SignalId s = 0; s < me.signal_count(); ++s) {
    std::printf(" %s(%s)", me.signal_name(s).c_str(),
                me.is_input(s) ? "in" : "out");
  }
  std::printf("\nplaces: %zu, transitions: %zu\n", net.place_count(),
              net.transition_count());
  for (pn::TransitionId t = 0; t < net.transition_count(); ++t) {
    std::printf("  %-4s consumes {", me.format_label(t).c_str());
    for (pn::PlaceId p : net.preset(t)) std::printf(" %s", net.place_name(p).c_str());
    std::printf(" } produces {");
    for (pn::PlaceId p : net.postset(t)) std::printf(" %s", net.place_name(p).c_str());
    std::puts(" }");
  }

  std::puts("\n== The three state models (Fig. 2) ==");
  sg::StateGraph graph = sg::build_state_graph(me);
  std::printf("reachability graph (markings): %zu vertices\n",
              graph.distinct_markings());
  std::printf("state graph (codes):           %zu vertices\n",
              graph.distinct_codes());
  std::printf("full state graph (pairs):      %zu vertices\n", graph.size());

  std::puts("\nfull states (code = r1 g1 r2 g2):");
  for (std::size_t s = 0; s < graph.size(); ++s) {
    std::printf("  %2zu: %s  enabled:", s, graph.code_string(s).c_str());
    for (pn::TransitionId t : graph.enabled_transitions(s)) {
      std::printf(" %s", me.format_label(t).c_str());
    }
    std::puts("");
  }

  std::puts("\n== Strict check: the grant conflict is an arbitration ==");
  core::ImplementabilityReport strict = core::check_implementability(me);
  std::fputs(strict.summary(me).c_str(), stdout);

  std::puts("== With the arbitration point declared (paper, footnote 1) ==");
  core::CheckOptions options;
  options.arbitration_pairs.push_back({"g1", "g2"});
  core::ImplementabilityReport relaxed = core::check_implementability(me, options);
  std::fputs(relaxed.summary(me).c_str(), stdout);

  return relaxed.level == core::ImplementabilityLevel::kGateImplementable ? 0 : 1;
}
