// stg_checkd: the resident implementability-check daemon.
//
// Accepts many nets over a local AF_UNIX socket speaking line-delimited
// JSON (schema: src/server/protocol.hpp and docs/architecture.md), runs
// up to --threads check sessions concurrently, and streams each session's
// typed event records to the submitting client as they are emitted. Runs
// until a client sends {"op":"shutdown"}.
//
//   usage: stg_checkd --socket <path> [--threads N]
//     --socket  PATH   AF_UNIX socket path to listen on (required)
//     --threads N      max concurrently running sessions (default 4,
//                      clamped to [1, 64])
//
// Try it:
//   stg_checkd --socket /tmp/stg_checkd.sock &
//   stg_checkd_client --socket /tmp/stg_checkd.sock --batch nets/*.g
//   stg_checkd_client --socket /tmp/stg_checkd.sock --shutdown
#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/check_server.hpp"
#include "util/error.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: stg_checkd --socket <path> [--threads N]\n"
      "  --socket  PATH   AF_UNIX socket path to listen on\n"
      "  --threads N      max concurrently running sessions (default 4)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stgcheck;

  server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_arg = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next_arg();
    } else if (arg == "--threads") {
      options.threads = static_cast<std::size_t>(std::atol(next_arg()));
      if (options.threads < 1) {
        std::fputs("--threads must be >= 1\n", stderr);
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (options.socket_path.empty()) {
    usage();
    return 1;
  }

  try {
    server::CheckServer server(options);
    server.start();
    std::fprintf(stderr, "stg_checkd: listening on %s (%zu threads)\n",
                 options.socket_path.c_str(), server.thread_count());
    server.wait();  // returns after a client's shutdown op
    std::fputs("stg_checkd: shut down\n", stderr);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
