// From specification to gates: checks a family of STGs and prints the
// derived complex-gate netlists (the "conventional way" of Sec. 2,
// implemented symbolically in src/logic).
#include <cstdio>

#include "core/implementability.hpp"
#include "logic/logic.hpp"
#include "stg/generators.hpp"

namespace {

void synthesize(const stgcheck::stg::Stg& stg,
                const stgcheck::core::CheckOptions& options = {}) {
  using namespace stgcheck;
  std::printf("---- %s ----\n", stg.name().c_str());
  core::ImplementabilityReport report = core::check_implementability(stg, options);
  std::printf("verdict: %s\n", core::to_string(report.level).c_str());
  if (!report.safe || !report.consistent) {
    std::puts("cannot derive logic\n");
    return;
  }
  logic::LogicResult gates =
      logic::derive_logic(*report.encoding, report.traversal.reached);
  std::fputs(gates.netlist().c_str(), stdout);
  std::size_t literals = 0;
  for (const auto& eq : gates.equations) literals += eq.literal_count;
  std::printf("(%zu equations, %zu literals total)\n\n", gates.equations.size(),
              literals);
}

}  // namespace

int main() {
  using namespace stgcheck;

  // A 3-stage Muller pipeline: every stage derives to a C-element.
  synthesize(stg::muller_pipeline(3));

  // The master-read controller.
  synthesize(stg::master_read(2));

  // The ME element needs its arbitration point declared; the grants then
  // derive to mutual-exclusion latch equations.
  core::CheckOptions me_options;
  me_options.arbitration_pairs.push_back({"g1", "g2"});
  synthesize(stg::examples::mutex2(), me_options);

  // A CSC-violating specification: derivation is refused for the signal.
  synthesize(stg::examples::pulse_cycle());
  return 0;
}
