// Figures 3 and 4 of the paper: transition vs signal persistency and the
// classification of fake conflicts.
//
// D1 contains two transitions in direct conflict (a+ vs b+/2) that are
// both non-persistent, yet both *signals* remain persistent: whichever
// fires, the other signal's alternative instance becomes enabled -- a
// *symmetric fake conflict*. D2 realizes the same state graph with plain
// concurrency and no conflict at all. The asymmetric variant keeps signal
// b alive after a+ but kills signal a after b+.
#include <cstdio>

#include "core/checks.hpp"
#include "core/traversal.hpp"
#include "sg/explicit_checks.hpp"
#include "sg/state_graph.hpp"
#include "stg/generators.hpp"

namespace {

void analyze(const stgcheck::stg::Stg& stg) {
  using namespace stgcheck;
  std::printf("---- %s ----\n", stg.name().c_str());

  core::SymbolicStg sym(stg);
  core::TraversalResult traversal = core::traverse(sym);
  std::printf("reachable full states: %.0f\n", traversal.stats.states);

  const auto transition_conflicts =
      core::transition_persistency(sym, traversal.reached);
  std::printf("non-persistent transition pairs: %zu\n", transition_conflicts.size());
  for (const auto& v : transition_conflicts) {
    std::printf("  transition %s disabled by %s\n",
                stg.format_label(v.victim).c_str(),
                stg.format_label(v.disabler).c_str());
  }

  const auto signal_violations = core::signal_persistency(sym, traversal.reached);
  std::printf("signal persistency violations:  %zu\n", signal_violations.size());
  for (const auto& v : signal_violations) {
    std::printf("  signal %s disabled by %s\n",
                stg.signal_name(v.victim).c_str(),
                stg.format_label(v.disabler).c_str());
  }

  for (const auto& report : core::analyze_fake_conflicts(sym, traversal.reached)) {
    const char* kind = report.symmetric_fake()    ? "symmetric fake"
                       : report.asymmetric_fake() ? "asymmetric fake"
                                                  : "real";
    std::printf("conflict %s vs %s: %s\n", stg.format_label(report.t1).c_str(),
                stg.format_label(report.t2).c_str(), kind);
  }
  const auto freedom = core::check_fake_freedom(sym, traversal.reached);
  std::printf("fake-free STG: %s\n\n", freedom.fake_free ? "yes" : "NO");
}

}  // namespace

int main() {
  using namespace stgcheck;

  std::puts("== Fig. 3: same state graph, conflict vs concurrency ==");
  analyze(stg::examples::fig3_d1());
  analyze(stg::examples::fig3_d2());

  // The two nets realize the same SG: same code count, same state count.
  sg::StateGraph g1 = sg::build_state_graph(stg::examples::fig3_d1());
  sg::StateGraph g2 = sg::build_state_graph(stg::examples::fig3_d2());
  std::printf("D1 codes: %zu, D2 codes: %zu (identical SG per Sec. 3.2)\n\n",
              g1.distinct_codes(), g2.distinct_codes());

  std::puts("== Fig. 4: asymmetric fake conflicts ==");
  analyze(stg::examples::fake_asymmetric(/*output_ab=*/false));
  std::puts("(as inputs the asymmetric fake is a legal choice; as outputs:)");
  analyze(stg::examples::fake_asymmetric(/*output_ab=*/true));
  return 0;
}
