// Complete State Coding in depth: excitation/quiescent regions, the
// contradictory code sets, and the reducible/irreducible classification
// (Secs. 3.3, 3.4, 5.3 of the paper).
//
// Four specimens:
//   pulse_cycle          CSC violation, IRREDUCIBLE: the contradictory
//                        states are joined by the input-only path a-, a+
//                        (mutually complementary input sequences);
//   output_cycle         same code clash but among outputs: REDUCIBLE;
//   output_cycle_resolved the reduction, realized: CSC holds;
//   vme_read             the classic VME bus controller read cycle.
#include <cstdio>

#include "core/checks.hpp"
#include "core/traversal.hpp"
#include "stg/generators.hpp"

namespace {

void analyze(const stgcheck::stg::Stg& stg) {
  using namespace stgcheck;
  std::printf("---- %s ----\n", stg.name().c_str());

  core::SymbolicStg sym(stg);
  core::TraversalResult traversal = core::traverse(sym);
  bdd::Manager& m = sym.manager();
  std::printf("states: %.0f, codes: %.0f\n", traversal.stats.states,
              sym.count_codes(traversal.reached));

  for (stg::SignalId a : stg.noninput_signals()) {
    const core::SignalRegions r = core::signal_regions(sym, traversal.reached, a);
    const bdd::Bdd clash = (r.er_plus & r.qr_minus) | (r.er_minus & r.qr_plus);
    std::printf("  signal %-4s ER(+): %-22s QR(-): %s\n",
                stg.signal_name(a).c_str(), m.to_string(r.er_plus, 4).c_str(),
                m.to_string(r.qr_minus, 4).c_str());
    if (!clash.is_false()) {
      std::printf("    CSC(%s) VIOLATED on codes: %s\n",
                  stg.signal_name(a).c_str(), m.to_string(clash, 4).c_str());
    }
  }

  const core::SymCscResult csc = core::check_csc(sym, traversal.reached);
  std::printf("USC: %s, CSC: %s\n", csc.unique_state_coding ? "yes" : "NO",
              csc.complete_state_coding ? "yes" : "NO");
  if (!csc.complete_state_coding) {
    const core::SymReducibilityResult red =
        core::check_csc_reducibility(sym, traversal.reached);
    if (red.reducible) {
      std::puts("verdict: REDUCIBLE - internal signal insertion can fix it");
    } else {
      std::printf("verdict: IRREDUCIBLE for");
      for (stg::SignalId s : red.irreducible_signals) {
        std::printf(" %s", stg.signal_name(s).c_str());
      }
      std::puts(" - mutually complementary input sequences; the interface"
                " must change");
    }
  }
  std::puts("");
}

}  // namespace

int main() {
  using namespace stgcheck;
  analyze(stg::examples::pulse_cycle());
  analyze(stg::examples::output_cycle());
  analyze(stg::examples::output_cycle_resolved());
  analyze(stg::examples::vme_read());
  return 0;
}
